//! A minimal JSON reader for the baseline differ.
//!
//! The workspace builds without external crates, so this module stands in
//! for `serde_json` where the harness must *read* JSON back (diffing a
//! fresh `BENCH_engine.json` against the committed baseline). It parses
//! the full JSON grammar, including `\uXXXX` escapes: surrogate *pairs*
//! decode to the real supplementary-plane code point, and lone surrogates
//! are a parse error — report strings round-trip exactly, never silently
//! corrupting to U+FFFD.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (key order not preserved).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects (`None` for other variants / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Path lookup: `value.path(&["engine", "node_rounds_per_sec"])`.
    pub fn path(&self, keys: &[&str]) -> Option<&Value> {
        keys.iter().try_fold(self, |v, k| v.get(k))
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// A parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Maximum container nesting depth [`parse`] accepts. The recursive
/// descent otherwise turns attacker-supplied (or simply corrupt) input
/// like `[[[[…` into a stack overflow — an abort, not a catchable error.
/// No legitimate report document nests past a handful of levels.
pub const MAX_DEPTH: usize = 128;

/// Parse a complete JSON document.
///
/// # Errors
/// Returns the first syntax error, with its byte offset; documents
/// nesting containers deeper than [`MAX_DEPTH`] levels are rejected.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current container nesting level (see [`MAX_DEPTH`]).
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    /// Enter one container level, rejecting documents past [`MAX_DEPTH`].
    fn descend(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(&format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        self.descend()?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        self.descend()?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            out.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Obj(out));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            match cp {
                                // High surrogate: must be followed by a
                                // low surrogate; the pair decodes to one
                                // supplementary-plane code point.
                                0xD800..=0xDBFF => {
                                    if self.peek() != Some(b'\\') {
                                        return Err(self.err("lone high surrogate"));
                                    }
                                    self.pos += 1;
                                    if self.peek() != Some(b'u') {
                                        return Err(self.err("lone high surrogate"));
                                    }
                                    self.pos += 1;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..=0xDFFF).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    out.push(
                                        char::from_u32(c).expect("surrogate pair is a scalar"),
                                    );
                                }
                                0xDC00..=0xDFFF => {
                                    return Err(self.err("lone low surrogate"));
                                }
                                // Every non-surrogate u16 is a scalar value.
                                _ => {
                                    out.push(char::from_u32(cp).expect("non-surrogate is a scalar"))
                                }
                            }
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // consume one UTF-8 scalar (input is a &str, so this is safe
                    // to do bytewise: copy continuation bytes with the lead)
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|b| b & 0b1100_0000 == 0b1000_0000)
                    {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    /// Four hex digits of a `\uXXXX` escape (cursor past the `u`).
    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_bench_schema() {
        let doc = r#"{
          "bench": "engine/flood", "n": 8192, "speedup_vs_legacy": 2.168,
          "engine": {"node_rounds_per_sec": 16530428, "allocations_per_node_round": 0.0134}
        }"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("bench").unwrap().as_str(), Some("engine/flood"));
        assert_eq!(
            v.path(&["engine", "node_rounds_per_sec"]).unwrap().as_f64(),
            Some(16530428.0)
        );
        assert_eq!(v.get("speedup_vs_legacy").unwrap().as_f64(), Some(2.168));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parses_arrays_bools_null_and_escapes() {
        let v = parse(r#"[true, false, null, "a\"bA", [1, -2.5e-3]]"#).unwrap();
        let Value::Arr(items) = &v else { panic!() };
        assert_eq!(items[0], Value::Bool(true));
        assert_eq!(items[2], Value::Null);
        assert_eq!(items[3].as_str(), Some("a\"bA"));
        let Value::Arr(nums) = &items[4] else {
            panic!()
        };
        assert_eq!(nums[1].as_f64(), Some(-2.5e-3));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nope").is_err());
        assert!(parse("{} extra").is_err());
        let e = parse("  @").unwrap_err();
        assert_eq!(e.offset, 2);
        assert!(e.to_string().contains("byte 2"));
    }

    #[test]
    fn round_trips_a_real_report() {
        // the actual shape written by the micro bench
        let p = crate::report::PerfStats {
            node_rounds: 100,
            messages: 300,
            allocations: 2,
            wall_ns: 5e5,
        };
        let b = crate::report::BenchReport {
            bench: "engine/flood".into(),
            n: 10,
            degree: 3,
            rounds: 5,
            cores: 4,
            engine: p,
            threaded_4_workers: p,
            legacy_baseline: p,
            threaded_scaling: crate::report::ThreadedScaling {
                n: 20,
                degree: 3,
                rounds: 5,
                serial: p,
                rows: vec![crate::report::ScalingRow {
                    workers: 4,
                    stats: p,
                }],
            },
            phase_times: crate::report::PhaseTimesBench {
                workers: 4,
                dispatched_rounds: 4,
                inline_rounds: 1,
                partition_ns_per_round: 100.0,
                route_ns_per_round: 200.0,
                deliver_ns_per_round: 150.0,
                merge_ns_per_round: 75.0,
                inline_ns_per_round: 50.0,
            },
            edge_problems: crate::report::EdgeProblemsBench {
                n: 10,
                m: 15,
                matching: p,
                edge_coloring: p,
            },
        };
        let v = parse(&b.to_json()).unwrap();
        assert_eq!(
            v.path(&["phase_times", "route_ns_per_round"])
                .unwrap()
                .as_f64(),
            Some(200.0)
        );
        assert_eq!(
            v.path(&["engine", "allocations"]).unwrap().as_f64(),
            Some(2.0)
        );
        assert_eq!(
            v.path(&["threaded_scaling", "w4_vs_serial"])
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
        assert_eq!(
            v.path(&["edge_problems", "matching", "node_rounds_per_sec"])
                .unwrap()
                .as_f64(),
            Some(2e5)
        );
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        // exactly MAX_DEPTH levels parse…
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(parse(&ok).is_ok());
        // …one more is a typed error, not a stack overflow
        let deep = "[".repeat(MAX_DEPTH + 1) + &"]".repeat(MAX_DEPTH + 1);
        let e = parse(&deep).unwrap_err();
        assert!(e.message.contains("nesting"), "got {e}");
        // objects count toward the same limit, and a pathologically deep
        // document (far past any plausible real stack budget) still fails
        // cleanly
        let obj = r#"{"a":"#.repeat(MAX_DEPTH + 1) + "1" + &"}".repeat(MAX_DEPTH + 1);
        assert!(parse(&obj).unwrap_err().message.contains("nesting"));
        let huge = "[".repeat(1_000_000);
        assert!(parse(&huge).unwrap_err().message.contains("nesting"));
        // siblings do not accumulate: depth is nesting, not total containers
        let wide = "[".to_string() + &"[],".repeat(500) + "[]]";
        assert!(parse(&wide).is_ok());
    }

    #[test]
    fn parses_unicode_strings() {
        let v = parse("\"Δ ≈ 8\"").unwrap();
        assert_eq!(v.as_str(), Some("Δ ≈ 8"));
    }

    #[test]
    fn decodes_surrogate_pairs_to_the_real_code_point() {
        // U+1F600 GRINNING FACE as an escaped surrogate pair
        let v = parse("\"\\uD83D\\uDE00\"").unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
        // mixed: BMP escape, raw text, escaped pair (U+1F980 CRAB)
        let v = parse("\"x\\u0394y\\uD83E\\uDD80z\"").unwrap();
        assert_eq!(v.as_str(), Some("x\u{0394}y\u{1F980}z"));
        // boundary pairs: U+10000 and U+10FFFF
        assert_eq!(
            parse("\"\\uD800\\uDC00\"").unwrap().as_str(),
            Some("\u{10000}")
        );
        assert_eq!(
            parse("\"\\uDBFF\\uDFFF\"").unwrap().as_str(),
            Some("\u{10FFFF}")
        );
        // raw (unescaped) non-BMP text is untouched
        assert_eq!(parse("\"🦀\"").unwrap().as_str(), Some("🦀"));
    }

    #[test]
    fn rejects_lone_and_malformed_surrogates() {
        for doc in [
            r#""\uD800""#,       // lone high at end of string
            r#""\uD800x""#,      // high followed by a raw char
            r#""\uD800\n""#,     // high followed by a non-\u escape
            r#""\uD800\uD800""#, // high followed by another high
            r#""\uDC00""#,       // lone low
            r#""\uDE00\uD83D""#, // pair in the wrong order
        ] {
            let err = parse(doc).unwrap_err();
            assert!(
                err.message.contains("surrogate"),
                "{doc}: unexpected error {err}"
            );
        }
        // truncated pair tail
        assert!(parse(r#""\uD83D\uDE"#).is_err());
    }

    #[test]
    fn non_bmp_report_strings_round_trip_through_the_writer() {
        // A suite report whose scenario name needs a supplementary-plane
        // character: written by the report writer, read back by this
        // parser, byte-for-byte equal strings.
        let mut report = crate::report::Report {
            suite: "emoji 🦀 suite".into(),
            seed: 7,
            scenarios: vec![],
        };
        report.scenarios.push(crate::report::ScenarioReport {
            name: "mis/🦀-gnp-72/trivial \u{10FFFF}".into(),
            problem: "mis",
            family: "🦀-gnp-72".into(),
            algo: "trivial".into(),
            seed: 99,
            n: 4,
            m: 3,
            valid: true,
            awake_bound: 5,
            round_bound: 5,
            bound_ok: true,
            metrics: crate::report::ScenarioMetrics {
                rounds: 5,
                max_awake: 3,
                awake_p50: 2,
                awake_p99: 3,
                total_awake: 10,
                avg_awake: 2.5,
                messages_sent: 12,
                messages_lost: 2,
                faults_dropped: 0,
                faults_duplicated: 0,
                faults_delayed: 0,
                faults_crashed: 0,
                recovery_rounds: 0,
                recovery_awake: 0,
                awake_events: 10,
                rounds_skipped: 0,
            },
            timing: crate::report::Timing::default(),
        });
        for doc in [report.to_json(), report.canonical_json()] {
            let v = parse(&doc).unwrap();
            assert_eq!(v.get("suite").unwrap().as_str(), Some("emoji 🦀 suite"));
            let Some(Value::Arr(rows)) = v.get("scenarios") else {
                panic!("scenarios array")
            };
            assert_eq!(
                rows[0].get("name").unwrap().as_str(),
                Some("mis/🦀-gnp-72/trivial \u{10FFFF}")
            );
            assert_eq!(rows[0].get("family").unwrap().as_str(), Some("🦀-gnp-72"));
        }
    }
}
