//! Scenario specifications: what to run, on what graph, with which solver.
//!
//! A [`Scenario`] is one point of the paper's trade-off surface — a
//! (graph family × problem × algorithm/executor) tuple plus a name. The
//! [`presets`] registry enumerates curated suites; [`ScenarioBuilder`]
//! assembles one-off scenarios for examples and tests.

use awake_graphs::{generators, Graph};
use awake_sleeping::FaultPlan;

/// A seeded graph family — the first axis of a scenario.
///
/// Random families receive the scenario's derived seed at build time, so a
/// suite re-run with the same suite seed regenerates identical graphs.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphFamily {
    /// Path `P_n`.
    Path {
        /// Number of nodes.
        n: usize,
    },
    /// Cycle `C_n`.
    Cycle {
        /// Number of nodes.
        n: usize,
    },
    /// `rows × cols` grid.
    Grid {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
    /// Uniform random tree on `n` nodes.
    RandomTree {
        /// Number of nodes.
        n: usize,
    },
    /// Erdős–Rényi `G(n, p)`.
    Gnp {
        /// Number of nodes.
        n: usize,
        /// Edge probability.
        p: f64,
    },
    /// Sparse Erdős–Rényi `G(n, p)` with `p = avg_deg / (n-1)`, sampled by
    /// geometric edge skipping (`O(n + m)`) — the million-node family.
    /// A distinct family from [`GraphFamily::Gnp`]: same distribution,
    /// different RNG stream.
    SparseGnp {
        /// Number of nodes.
        n: usize,
        /// Target average degree (sets `p = avg_deg / (n-1)`).
        avg_deg: f64,
    },
    /// Star `S_{n−1}` (one hub, `n − 1` leaves) — the maximally hub-heavy
    /// family, where awake cost concentrates on a single node.
    Star {
        /// Number of nodes (hub included).
        n: usize,
    },
    /// Caterpillar: a path of `spine` nodes with `legs` pendant leaves on
    /// each — many medium hubs in a row.
    Caterpillar {
        /// Spine length.
        spine: usize,
        /// Leaves per spine node.
        legs: usize,
    },
    /// Random `d`-regular graph — the bounded-degree expander family.
    RandomRegular {
        /// Number of nodes.
        n: usize,
        /// Degree.
        d: usize,
    },
    /// Random graph with maximum degree capped at `delta`.
    BoundedDegree {
        /// Number of nodes.
        n: usize,
        /// Maximum degree.
        delta: usize,
    },
}

impl GraphFamily {
    /// A short stable label (used in scenario names and reports).
    pub fn key(&self) -> String {
        match self {
            GraphFamily::Path { n } => format!("path-{n}"),
            GraphFamily::Cycle { n } => format!("cycle-{n}"),
            GraphFamily::Grid { rows, cols } => format!("grid-{rows}x{cols}"),
            GraphFamily::RandomTree { n } => format!("tree-{n}"),
            // `{p}` is f64 Display — the shortest string that round-trips,
            // so distinct probabilities never collide on key (or, since the
            // key salts it, on derived seed)
            GraphFamily::Gnp { n, p } => format!("gnp-{n}-p{p}"),
            GraphFamily::SparseGnp { n, avg_deg } => format!("sgnp-{n}-d{avg_deg}"),
            GraphFamily::Star { n } => format!("star-{n}"),
            GraphFamily::Caterpillar { spine, legs } => format!("cat-{spine}x{legs}"),
            GraphFamily::RandomRegular { n, d } => format!("regular-{n}-d{d}"),
            GraphFamily::BoundedDegree { n, delta } => format!("bdeg-{n}-Δ{delta}"),
        }
    }

    /// Build the graph, feeding `seed` to the random families.
    pub fn build(&self, seed: u64) -> Graph {
        match *self {
            GraphFamily::Path { n } => generators::path(n),
            GraphFamily::Cycle { n } => generators::cycle(n),
            GraphFamily::Grid { rows, cols } => generators::grid(rows, cols),
            GraphFamily::RandomTree { n } => generators::random_tree(n, seed),
            GraphFamily::Gnp { n, p } => generators::gnp(n, p, seed),
            GraphFamily::SparseGnp { n, avg_deg } => {
                // Clamp: avg_deg >= n-1 means the complete graph.
                let p = if n > 1 {
                    (avg_deg / (n - 1) as f64).min(1.0)
                } else {
                    0.0
                };
                generators::gnp_sparse(n, p, seed)
            }
            GraphFamily::Star { n } => generators::star(n),
            GraphFamily::Caterpillar { spine, legs } => generators::caterpillar(spine, legs),
            GraphFamily::RandomRegular { n, d } => generators::random_regular(n, d, seed),
            GraphFamily::BoundedDegree { n, delta } => {
                generators::random_with_max_degree(n, delta, seed)
            }
        }
    }
}

/// One of the bundled O-LOCAL problems — the second axis. Four vertex
/// problems, plus the two edge problems solved via the line-graph
/// virtualization adapter (`awake_core::linegraph`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProblemKind {
    /// (Δ+1)-vertex coloring.
    Coloring,
    /// (deg+1)-list coloring (with the trivial `{0..deg}` lists).
    ListColoring,
    /// Maximal independent set.
    Mis,
    /// Minimal vertex cover.
    VertexCover,
    /// Maximal matching (edge problem, line-graph adapter).
    Matching,
    /// (2Δ−1)-edge coloring (edge problem, line-graph adapter).
    EdgeColoring,
}

impl ProblemKind {
    /// The four vertex problems, in registry order.
    pub const ALL: [ProblemKind; 4] = [
        ProblemKind::Coloring,
        ProblemKind::ListColoring,
        ProblemKind::Mis,
        ProblemKind::VertexCover,
    ];

    /// The two edge problems, in registry order.
    pub const EDGE: [ProblemKind; 2] = [ProblemKind::Matching, ProblemKind::EdgeColoring];

    /// A short stable label.
    pub fn key(&self) -> &'static str {
        match self {
            ProblemKind::Coloring => "coloring",
            ProblemKind::ListColoring => "list-coloring",
            ProblemKind::Mis => "mis",
            ProblemKind::VertexCover => "vertex-cover",
            ProblemKind::Matching => "matching",
            ProblemKind::EdgeColoring => "edge-coloring",
        }
    }

    /// Whether this is an edge problem (solved on the line graph through
    /// the virtualization adapter; only the `trivial` / `trivial-t*`
    /// executors apply).
    pub fn is_edge(&self) -> bool {
        matches!(self, ProblemKind::Matching | ProblemKind::EdgeColoring)
    }
}

/// The solver / executor — the third axis.
///
/// `Trivial*` run the folklore by-identifier greedy as a Sleeping-model
/// [`Program`](awake_sleeping::Program) on the serial engine or the
/// persistent worker pool; `Bm21` and `Theorem1` are the staged pipelines
/// from `awake-core`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// By-identifier greedy on the serial skip-ahead engine, awake `O(Δ)`.
    Trivial,
    /// By-identifier greedy on the worker-pool executor with this many
    /// workers (bit-for-bit identical results to [`Algo::Trivial`]).
    TrivialThreaded(usize),
    /// Barenboim–Maimon, awake `O(log Δ + log* n)`.
    Bm21,
    /// The paper's Theorem 1, awake `O(√log n · log* n)`.
    Theorem1,
}

impl Algo {
    /// A short stable label.
    pub fn key(&self) -> String {
        match self {
            Algo::Trivial => "trivial".into(),
            Algo::TrivialThreaded(w) => format!("trivial-t{w}"),
            Algo::Bm21 => "bm21".into(),
            Algo::Theorem1 => "theorem1".into(),
        }
    }
}

/// Seeded fault-injection rates attached to a scenario (all
/// parts-per-million; the concrete [`FaultPlan`] seed derives from the
/// scenario's derived seed at run time, so the injected fault stream is as
/// reproducible as the graph instance). Every solver takes fault injection
/// through the time-redundancy wrapper; the runner sizes the redundancy
/// factor from these rates and audits against the degraded budgets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Probability (ppm) that a transmission is dropped in flight.
    pub drop_ppm: u32,
    /// Probability (ppm) that a transmission is duplicated.
    pub dup_ppm: u32,
    /// Probability (ppm) that a transmission is delayed.
    pub delay_ppm: u32,
    /// Probability (ppm) that an awake node crash-restarts in a round.
    pub crash_ppm: u32,
    /// Rounds a delayed message is held before redelivery is attempted.
    pub delay_rounds: u64,
    /// First round of the fault burst window (0 = faults active from the
    /// start; see [`FaultPlan::burst_start`]).
    pub burst_start: u64,
    /// Length of the burst window in rounds (0 = no window: faults at
    /// their rates for the whole run).
    pub burst_len: u64,
    /// Quiet period: no injected faults at or after this round (0 = never
    /// quiet). The degraded-budget property tests rely on a quiet tail so
    /// the run can settle and finish.
    pub quiet_after: u64,
}

impl FaultSpec {
    /// The concrete plan for a scenario run seeded with `seed`.
    pub fn plan(&self, seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_ppm: self.drop_ppm,
            dup_ppm: self.dup_ppm,
            delay_ppm: self.delay_ppm,
            crash_ppm: self.crash_ppm,
            delay_rounds: self.delay_rounds.max(1),
            burst_start: self.burst_start,
            burst_len: self.burst_len,
            quiet_after: self.quiet_after,
        }
    }
}

/// One runnable experiment: a named (family × problem × algo) tuple.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Unique name within a suite (labeling only — the RNG seed derives
    /// from the graph-family key, see [`Scenario::seed`]).
    pub name: String,
    /// The graph family.
    pub family: GraphFamily,
    /// The problem to solve.
    pub problem: ProblemKind,
    /// The solver/executor.
    pub algo: Algo,
    /// Optional seeded fault injection.
    pub faults: Option<FaultSpec>,
}

impl Scenario {
    /// Start building a scenario from its three axes; the name defaults to
    /// `problem/family/algo`.
    pub fn of(family: GraphFamily, problem: ProblemKind, algo: Algo) -> ScenarioBuilder {
        ScenarioBuilder {
            name: None,
            family,
            problem,
            algo,
            faults: None,
        }
    }

    /// The scenario's RNG seed: the suite seed salted with a stable hash
    /// of the graph-family key. Deterministic, order-independent, and
    /// stable across platforms — part of the report compatibility surface.
    ///
    /// Salting by *family* (not by name) means every scenario over the same
    /// family spec in a suite gets the **same graph instance**, so
    /// cross-problem and cross-algorithm rows compare like for like, while
    /// distinct families draw independent streams.
    pub fn seed(&self, suite_seed: u64) -> u64 {
        splitmix64(suite_seed ^ fnv1a(self.family.key().as_bytes()))
    }
}

/// Builder for [`Scenario`] (see [`Scenario::of`]).
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    name: Option<String>,
    family: GraphFamily,
    problem: ProblemKind,
    algo: Algo,
    faults: Option<FaultSpec>,
}

impl ScenarioBuilder {
    /// Override the derived name.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Attach seeded fault injection (default names gain a `+faults`
    /// suffix so faulted and fault-free rows stay distinct).
    pub fn with_faults(mut self, spec: FaultSpec) -> Self {
        self.faults = Some(spec);
        self
    }

    /// Finish the scenario.
    pub fn build(self) -> Scenario {
        let name = self.name.unwrap_or_else(|| {
            format!(
                "{}/{}/{}{}",
                self.problem.key(),
                self.family.key(),
                self.algo.key(),
                if self.faults.is_some() { "+faults" } else { "" }
            )
        });
        Scenario {
            name,
            family: self.family,
            problem: self.problem,
            algo: self.algo,
            faults: self.faults,
        }
    }
}

/// FNV-1a over bytes — stable graph-family-key hashing for seed derivation.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// One SplitMix64 step — whitens the suite-seed/name-hash mix.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Named suite presets.
pub mod presets {
    use super::*;

    /// The five core families at a small size — one scenario per
    /// (problem × family), all solved with Theorem 1.
    ///
    /// 4 problems × 5 families = 20 scenarios; small enough for CI smoke
    /// runs and the golden-snapshot test.
    pub fn quick() -> Vec<Scenario> {
        families_at(Size::Small)
            .into_iter()
            .flat_map(|family| {
                ProblemKind::ALL.iter().map(move |&problem| {
                    Scenario::of(family.clone(), problem, Algo::Theorem1).build()
                })
            })
            .collect()
    }

    /// The full sweep: the five core families at three sizes, every
    /// problem, Theorem 1 (60 scenarios).
    pub fn full() -> Vec<Scenario> {
        [Size::Small, Size::Medium, Size::Large]
            .into_iter()
            .flat_map(|size| {
                families_at(size).into_iter().flat_map(|family| {
                    ProblemKind::ALL.iter().map(move |&problem| {
                        Scenario::of(family.clone(), problem, Algo::Theorem1).build()
                    })
                })
            })
            .collect()
    }

    /// Algorithm-generation comparison: every problem × every solver on a
    /// bounded-degree mesh (the energy-audit workload), 16 scenarios.
    pub fn algos() -> Vec<Scenario> {
        let family = GraphFamily::BoundedDegree { n: 256, delta: 24 };
        ProblemKind::ALL
            .iter()
            .flat_map(|&problem| {
                let family = family.clone();
                [
                    Algo::Trivial,
                    Algo::TrivialThreaded(4),
                    Algo::Bm21,
                    Algo::Theorem1,
                ]
                .into_iter()
                .map(move |algo| Scenario::of(family.clone(), problem, algo).build())
            })
            .collect()
    }

    /// Serial vs. worker-pool executor agreement workload: every problem
    /// on `G(n, p)` under both executors (8 scenarios).
    pub fn executors() -> Vec<Scenario> {
        let family = GraphFamily::Gnp { n: 300, p: 0.05 };
        ProblemKind::ALL
            .iter()
            .flat_map(|&problem| {
                let family = family.clone();
                [Algo::Trivial, Algo::TrivialThreaded(8)]
                    .into_iter()
                    .map(move |algo| Scenario::of(family.clone(), problem, algo).build())
            })
            .collect()
    }

    /// Million-node sparse workloads on the owner-sharded worker-pool
    /// executor — the scale regime the delivery pipeline exists for.
    ///
    /// The final row re-runs the headline scenario on the serial engine:
    /// same family spec ⇒ same derived seed ⇒ same graph instance, so the
    /// report pair is a like-for-like executor cross-check at n = 10⁶.
    pub fn huge() -> Vec<Scenario> {
        let million = GraphFamily::SparseGnp {
            n: 1_000_000,
            avg_deg: 6.0,
        };
        vec![
            Scenario::of(million.clone(), ProblemKind::Mis, Algo::TrivialThreaded(4)).build(),
            Scenario::of(
                GraphFamily::RandomTree { n: 1_000_000 },
                ProblemKind::Mis,
                Algo::TrivialThreaded(4),
            )
            .build(),
            Scenario::of(
                GraphFamily::SparseGnp {
                    n: 250_000,
                    avg_deg: 8.0,
                },
                ProblemKind::Coloring,
                Algo::TrivialThreaded(4),
            )
            .build(),
            Scenario::of(million, ProblemKind::Mis, Algo::Trivial).build(),
        ]
    }

    /// The edge-problem workload: maximal matching and (2Δ−1)-edge
    /// coloring on **every** registered graph-family variant, each under
    /// the serial engine and the 4-worker pool (the two executors the
    /// line-graph adapter rides). 10 families × 2 problems × 2 executors
    /// = 40 scenarios; serial/threaded pairs share a graph instance, so
    /// their deterministic metrics must be identical row for row.
    pub fn edges() -> Vec<Scenario> {
        let mut families = families_at(Size::Small);
        families.extend([
            GraphFamily::Path { n: 96 },
            GraphFamily::SparseGnp {
                n: 128,
                avg_deg: 5.0,
            },
            GraphFamily::BoundedDegree { n: 96, delta: 8 },
            GraphFamily::Star { n: 48 },
            GraphFamily::Caterpillar { spine: 10, legs: 4 },
        ]);
        families
            .into_iter()
            .flat_map(|family| {
                ProblemKind::EDGE.iter().flat_map(move |&problem| {
                    let family = family.clone();
                    [Algo::Trivial, Algo::TrivialThreaded(4)]
                        .into_iter()
                        .map(move |algo| Scenario::of(family.clone(), problem, algo).build())
                })
            })
            .collect()
    }

    /// The energy-scaling sweep: Theorem 1 and BM21 on sparse Erdős–Rényi
    /// graphs with `n ∈ {2^10 .. 2^21}` (average degree 4, so `Δ` stays
    /// small while `n` spans three orders of magnitude). One run per
    /// (algo × size); the per-point `max_awake / log₂ n` series in
    /// `BENCH_energy.json` is the paper's sub-logarithmic claim made
    /// empirical, and `--audit` gates every point against the closed-form
    /// budgets. The top sizes are only tractable because the executors'
    /// cost is proportional to awake *events*: the wheel batch-cascades
    /// across the long all-asleep gaps these runs spend most of their
    /// virtual time in.
    pub fn scaling() -> Vec<Scenario> {
        scaling_to(21)
    }

    /// The weekly deep sweep: [`scaling`] extended to `n = 2^22`. Too slow
    /// for the per-PR budget, so CI runs it on a cron schedule only.
    pub fn deep() -> Vec<Scenario> {
        scaling_to(22)
    }

    fn scaling_to(max_exp: u32) -> Vec<Scenario> {
        (10..=max_exp)
            .flat_map(|exp| {
                let family = GraphFamily::SparseGnp {
                    n: 1usize << exp,
                    avg_deg: 4.0,
                };
                [Algo::Theorem1, Algo::Bm21]
                    .into_iter()
                    .map(move |algo| Scenario::of(family.clone(), ProblemKind::Mis, algo).build())
            })
            .collect()
    }

    /// Seeded fault injection on the by-identifier greedy: every vertex
    /// problem on `G(n, p)` under drops, duplicates, delays and
    /// crash-restarts, on the serial engine and the 4-worker pool
    /// (8 scenarios). Serial/threaded pairs share a graph instance *and*
    /// a fault stream, so their deterministic metrics — fault counters
    /// included — must be identical row for row. The quiet tail lets every
    /// run settle, so `--audit` gates these rows against the *degraded*
    /// budgets — no exemption.
    pub fn faults() -> Vec<Scenario> {
        let family = GraphFamily::Gnp { n: 200, p: 0.06 };
        let spec = FaultSpec {
            drop_ppm: 40_000,
            dup_ppm: 25_000,
            delay_ppm: 25_000,
            crash_ppm: 15_000,
            delay_rounds: 2,
            burst_start: 0,
            burst_len: 0,
            quiet_after: 64,
        };
        ProblemKind::ALL
            .iter()
            .flat_map(|&problem| {
                let family = family.clone();
                [Algo::Trivial, Algo::TrivialThreaded(4)]
                    .into_iter()
                    .map(move |algo| {
                        Scenario::of(family.clone(), problem, algo)
                            .with_faults(spec)
                            .build()
                    })
            })
            .collect()
    }

    /// The adversarial fault soak: seeded fault streams *aimed* at the
    /// harness's weak points rather than sprayed uniformly —
    ///
    /// * **targeted crashes at decision rounds**: a dense crash burst over
    ///   the window where the by-identifier greedy's nodes wake to
    ///   announce, on the serial engine and the worker pool at 1/2/4/8
    ///   workers (the five rows share one graph and one fault stream, so
    ///   their metrics must agree bit for bit);
    /// * **correlated drops along tree paths**: a heavy drop burst on a
    ///   random tree, where any lost edge message severs the only route
    ///   between two subtrees;
    /// * **delay bursts spanning virtual-time jumps**: delays held long
    ///   enough to resurface inside the all-asleep gaps the
    ///   event-compressed executors batch-cascade over, on the hub-heavy
    ///   star family;
    /// * **crash faults through the staged pipelines** (BM21 and
    ///   Theorem 1) and **through the line-graph adapter** (maximal
    ///   matching, serial + threaded).
    ///
    /// Every spec keeps a quiet tail, so the runs settle and `--audit`
    /// gates each row against its degraded budget.
    pub fn soak() -> Vec<Scenario> {
        // Crash burst over the greedy's decision window. Base rounds are
        // `ident_bound + 1 ≈ n`; the redundancy wrapper stretches real
        // time, so the burst covers the first half of the unstretched
        // schedule and the quiet tail leaves ample settling room.
        let n = 64u64;
        let decision_crashes = FaultSpec {
            drop_ppm: 0,
            dup_ppm: 0,
            delay_ppm: 0,
            crash_ppm: 350_000,
            delay_rounds: 1,
            burst_start: 2,
            burst_len: n / 2,
            quiet_after: n,
        };
        // Correlated drops along tree paths: inside the burst window one
        // in ten transmissions vanishes — on a tree, where a single lost
        // edge severs a whole subtree, not just one neighbor pair. Drops
        // are survived by the redundancy window's surviving copies
        // (verified per seed by the validity gate), so the rate is the
        // hottest this pinned stream tolerates, not an arbitrary dial.
        let tree_path_drops = FaultSpec {
            drop_ppm: 100_000,
            dup_ppm: 0,
            delay_ppm: 0,
            crash_ppm: 0,
            delay_rounds: 1,
            burst_start: 1,
            burst_len: 48,
            quiet_after: 56,
        };
        // Delay bursts spanning virtual-time jumps: long-held delays that
        // resurface inside the all-asleep spans the wheel batch-cascades
        // over (the star's awake schedule is maximally gappy off-hub).
        let gap_delays = FaultSpec {
            drop_ppm: 0,
            dup_ppm: 40_000,
            delay_ppm: 300_000,
            crash_ppm: 0,
            delay_rounds: 6,
            burst_start: 1,
            burst_len: 40,
            quiet_after: 52,
        };
        // A crash-heavy mix for the staged pipelines and the edge adapter.
        let staged_crashes = FaultSpec {
            drop_ppm: 30_000,
            dup_ppm: 20_000,
            delay_ppm: 20_000,
            crash_ppm: 60_000,
            delay_rounds: 2,
            burst_start: 0,
            burst_len: 0,
            quiet_after: 30,
        };
        let gnp = GraphFamily::Gnp {
            n: n as usize,
            p: 0.1,
        };
        let small = GraphFamily::Gnp { n: 36, p: 0.12 };
        let mut out = vec![Scenario::of(gnp.clone(), ProblemKind::Mis, Algo::Trivial)
            .with_faults(decision_crashes)
            .build()];
        out.extend([1usize, 2, 4, 8].into_iter().map(|w| {
            Scenario::of(gnp.clone(), ProblemKind::Mis, Algo::TrivialThreaded(w))
                .with_faults(decision_crashes)
                .build()
        }));
        out.extend([
            Scenario::of(
                GraphFamily::RandomTree { n: 72 },
                ProblemKind::Coloring,
                Algo::Trivial,
            )
            .with_faults(tree_path_drops)
            .build(),
            Scenario::of(
                GraphFamily::RandomTree { n: 72 },
                ProblemKind::Coloring,
                Algo::TrivialThreaded(4),
            )
            .with_faults(tree_path_drops)
            .build(),
            Scenario::of(
                GraphFamily::Star { n: 48 },
                ProblemKind::VertexCover,
                Algo::Trivial,
            )
            .with_faults(gap_delays)
            .build(),
            Scenario::of(
                GraphFamily::Star { n: 48 },
                ProblemKind::VertexCover,
                Algo::TrivialThreaded(2),
            )
            .with_faults(gap_delays)
            .build(),
            Scenario::of(small.clone(), ProblemKind::Mis, Algo::Bm21)
                .with_faults(staged_crashes)
                .build(),
            Scenario::of(small.clone(), ProblemKind::Mis, Algo::Theorem1)
                .with_faults(staged_crashes)
                .build(),
            Scenario::of(small.clone(), ProblemKind::Matching, Algo::Trivial)
                .with_faults(staged_crashes)
                .build(),
            Scenario::of(small, ProblemKind::Matching, Algo::TrivialThreaded(4))
                .with_faults(staged_crashes)
                .build(),
        ]);
        out
    }

    /// One registry entry: a named preset plus the gate flags the suite
    /// applies (and `suite --list` surfaces) when running it.
    pub struct PresetInfo {
        /// The CLI name (`--preset <name>`).
        pub name: &'static str,
        /// One-line description.
        pub desc: &'static str,
        /// How this preset interacts with the suite's gates:
        /// `degraded-audit` (fault-injected rows gate against the
        /// closed-form *degraded* budgets instead of the fault-free ones —
        /// still a hard `--audit` gate, never an exemption) or
        /// `budget-bounded` (CI runs it under a hard wall-clock budget via
        /// `--budget-secs`).
        pub flags: &'static [&'static str],
        /// The scenarios, in suite order.
        pub scenarios: Vec<Scenario>,
    }

    /// Every preset, in registry order.
    pub fn registry() -> Vec<PresetInfo> {
        let entry = |name, desc, flags, scenarios| PresetInfo {
            name,
            desc,
            flags,
            scenarios,
        };
        const NONE: &[&str] = &[];
        vec![
            entry(
                "quick",
                "4 problems × 5 families, small sizes, Theorem 1",
                NONE,
                quick(),
            ),
            entry(
                "full",
                "4 problems × 5 families × 3 sizes, Theorem 1",
                NONE,
                full(),
            ),
            entry(
                "algos",
                "4 problems × 4 solvers on a bounded-degree mesh",
                NONE,
                algos(),
            ),
            entry(
                "executors",
                "serial vs. worker-pool executor on G(n,p), all problems",
                NONE,
                executors(),
            ),
            entry(
                "huge",
                "million-node sparse graphs on the worker-pool executor",
                NONE,
                huge(),
            ),
            entry(
                "edges",
                "matching + (2Δ-1)-edge coloring on every family, serial + threaded",
                NONE,
                edges(),
            ),
            entry(
                "scaling",
                "Theorem 1 + BM21 energy sweep, n = 2^10..2^21 on sparse G(n,p)",
                &["budget-bounded"],
                scaling(),
            ),
            entry(
                "deep",
                "the scaling sweep extended to n = 2^22 (weekly cron, not per-PR)",
                &["budget-bounded"],
                deep(),
            ),
            entry(
                "faults",
                "seeded drop/dup/delay/crash injection on G(n,p), serial + threaded",
                &["degraded-audit"],
                faults(),
            ),
            entry(
                "soak",
                "adversarial fault soak: targeted crashes, tree-path drops, gap-spanning delays",
                &["degraded-audit", "budget-bounded"],
                soak(),
            ),
        ]
    }

    /// Look a preset up by name.
    pub fn by_name(name: &str) -> Option<Vec<Scenario>> {
        registry()
            .into_iter()
            .find(|p| p.name == name)
            .map(|p| p.scenarios)
    }

    #[derive(Clone, Copy)]
    enum Size {
        Small,
        Medium,
        Large,
    }

    /// The five core families of the ISSUE spec, scaled to `size`:
    /// Erdős–Rényi, random trees, grids, paths/cycles, bounded-degree
    /// expanders.
    fn families_at(size: Size) -> Vec<GraphFamily> {
        match size {
            Size::Small => vec![
                GraphFamily::Gnp { n: 72, p: 0.08 },
                GraphFamily::RandomTree { n: 72 },
                GraphFamily::Grid { rows: 8, cols: 9 },
                GraphFamily::Cycle { n: 64 },
                GraphFamily::RandomRegular { n: 64, d: 4 },
            ],
            Size::Medium => vec![
                GraphFamily::Gnp { n: 192, p: 0.04 },
                GraphFamily::RandomTree { n: 192 },
                GraphFamily::Grid { rows: 12, cols: 16 },
                GraphFamily::Path { n: 192 },
                GraphFamily::RandomRegular { n: 192, d: 6 },
            ],
            Size::Large => vec![
                GraphFamily::Gnp { n: 384, p: 0.02 },
                GraphFamily::RandomTree { n: 384 },
                GraphFamily::Grid { rows: 16, cols: 24 },
                GraphFamily::Cycle { n: 384 },
                GraphFamily::RandomRegular { n: 384, d: 8 },
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_names_are_unique_within_presets() {
        for p in presets::registry() {
            let mut names: Vec<&str> = p.scenarios.iter().map(|s| s.name.as_str()).collect();
            names.sort_unstable();
            let before = names.len();
            names.dedup();
            assert_eq!(before, names.len(), "duplicate names in preset {}", p.name);
        }
    }

    #[test]
    fn quick_preset_covers_the_issue_floor() {
        let quick = presets::quick();
        assert!(quick.len() >= 20, "quick preset has {}", quick.len());
        let problems: std::collections::BTreeSet<&str> =
            quick.iter().map(|s| s.problem.key()).collect();
        assert_eq!(problems.len(), 4);
        let families: std::collections::BTreeSet<String> =
            quick.iter().map(|s| s.family.key()).collect();
        assert!(families.len() >= 5);
    }

    #[test]
    fn huge_preset_is_registered_and_million_scale() {
        let huge = presets::by_name("huge").expect("huge preset registered");
        assert!(huge
            .iter()
            .any(|s| matches!(s.family, GraphFamily::SparseGnp { n: 1_000_000, .. })));
        // the serial cross-check row shares the headline family, hence the
        // same derived seed and graph instance
        let threaded = huge
            .iter()
            .find(|s| s.algo == Algo::TrivialThreaded(4))
            .expect("threaded row");
        let serial = huge
            .iter()
            .find(|s| s.algo == Algo::Trivial)
            .expect("serial cross-check row");
        assert_eq!(threaded.family, serial.family);
        assert_eq!(threaded.seed(1), serial.seed(1));
    }

    #[test]
    fn edges_preset_covers_every_family_variant_and_both_executors() {
        let edges = presets::by_name("edges").expect("edges preset registered");
        assert_eq!(edges.len(), 40);
        assert!(edges.iter().all(|s| s.problem.is_edge()));
        // every GraphFamily variant is represented
        let variants: std::collections::BTreeSet<&str> = edges
            .iter()
            .map(|s| match s.family {
                GraphFamily::Path { .. } => "path",
                GraphFamily::Cycle { .. } => "cycle",
                GraphFamily::Grid { .. } => "grid",
                GraphFamily::RandomTree { .. } => "tree",
                GraphFamily::Gnp { .. } => "gnp",
                GraphFamily::SparseGnp { .. } => "sgnp",
                GraphFamily::Star { .. } => "star",
                GraphFamily::Caterpillar { .. } => "cat",
                GraphFamily::RandomRegular { .. } => "regular",
                GraphFamily::BoundedDegree { .. } => "bdeg",
            })
            .collect();
        assert_eq!(variants.len(), 10, "families: {variants:?}");
        // serial/threaded pairs share a family, hence a graph instance
        let serial = edges.iter().filter(|s| s.algo == Algo::Trivial).count();
        let threaded = edges
            .iter()
            .filter(|s| s.algo == Algo::TrivialThreaded(4))
            .count();
        assert_eq!((serial, threaded), (20, 20));
    }

    #[test]
    fn scaling_preset_sweeps_both_staged_algos_over_powers_of_two() {
        let scaling = presets::by_name("scaling").expect("scaling preset registered");
        assert_eq!(scaling.len(), 24);
        for exp in 10..=21usize {
            let at_n: Vec<&Scenario> = scaling
                .iter()
                .filter(|s| matches!(s.family, GraphFamily::SparseGnp { n, .. } if n == 1 << exp))
                .collect();
            let algos: std::collections::BTreeSet<String> =
                at_n.iter().map(|s| s.algo.key()).collect();
            assert_eq!(
                algos,
                ["bm21".to_string(), "theorem1".to_string()].into(),
                "n = 2^{exp}"
            );
            // same family spec ⇒ same derived seed ⇒ same graph instance,
            // so the two algos compare like for like at every point
            assert_eq!(at_n[0].seed(1), at_n[1].seed(1));
        }
    }

    #[test]
    fn deep_preset_extends_scaling_and_gate_flags_are_registered() {
        let scaling = presets::by_name("scaling").expect("scaling registered");
        let deep = presets::by_name("deep").expect("deep registered");
        // deep = scaling plus the 2^22 pair, same order (so a weekly deep
        // BENCH_energy.json is a superset of the per-PR one)
        assert_eq!(deep.len(), scaling.len() + 2);
        assert_eq!(&deep[..scaling.len()], &scaling[..]);
        assert!(deep
            .iter()
            .any(|s| matches!(s.family, GraphFamily::SparseGnp { n, .. } if n == 1 << 22)));
        // the gate flags `suite --list` surfaces
        let flags_of = |name: &str| {
            presets::registry()
                .into_iter()
                .find(|p| p.name == name)
                .expect("registered")
                .flags
        };
        assert_eq!(flags_of("scaling"), ["budget-bounded"]);
        assert_eq!(flags_of("deep"), ["budget-bounded"]);
        assert_eq!(flags_of("faults"), ["degraded-audit"]);
        assert_eq!(flags_of("soak"), ["degraded-audit", "budget-bounded"]);
        assert_eq!(flags_of("quick"), [] as [&str; 0]);
    }

    #[test]
    fn faults_preset_pairs_executors_on_one_fault_stream() {
        let faults = presets::by_name("faults").expect("faults preset registered");
        assert_eq!(faults.len(), 8);
        for s in &faults {
            let spec = s.faults.expect("every row injects faults");
            assert!(s.name.ends_with("+faults"), "name {}", s.name);
            // the concrete plan derives from the scenario seed
            let plan = spec.plan(s.seed(1));
            assert_eq!(plan.seed, s.seed(1));
            assert!(plan.is_active());
            assert!(plan.delay_rounds >= 1);
        }
        // serial/threaded pairs share family ⇒ seed ⇒ graph and fault stream
        let serial = faults.iter().filter(|s| s.algo == Algo::Trivial).count();
        let threaded = faults
            .iter()
            .filter(|s| s.algo == Algo::TrivialThreaded(4))
            .count();
        assert_eq!((serial, threaded), (4, 4));
    }

    #[test]
    fn soak_preset_covers_the_adversary_and_worker_matrix() {
        let soak = presets::by_name("soak").expect("soak preset registered");
        // every row injects faults and keeps a quiet tail (the degraded
        // budgets require one)
        for s in &soak {
            let spec = s.faults.expect("every soak row injects faults");
            assert!(spec.quiet_after > 0, "{}: no quiet tail", s.name);
            assert!(spec.plan(s.seed(1)).is_active(), "{}: inert plan", s.name);
        }
        // the decision-crash rows cover serial plus 1/2/4/8 workers on one
        // graph and fault stream
        let crash_rows: Vec<&Scenario> = soak
            .iter()
            .filter(|s| s.faults.is_some_and(|f| f.crash_ppm > 300_000))
            .collect();
        let algos: std::collections::BTreeSet<String> =
            crash_rows.iter().map(|s| s.algo.key()).collect();
        assert_eq!(
            algos,
            [
                "trivial".to_string(),
                "trivial-t1".to_string(),
                "trivial-t2".to_string(),
                "trivial-t4".to_string(),
                "trivial-t8".to_string(),
            ]
            .into()
        );
        for s in &crash_rows[1..] {
            assert_eq!(s.family, crash_rows[0].family);
            assert_eq!(s.seed(1), crash_rows[0].seed(1), "shared fault stream");
        }
        // the three adversary shapes and the staged/edge coverage
        assert!(soak
            .iter()
            .any(|s| matches!(s.family, GraphFamily::RandomTree { .. })
                && s.faults.is_some_and(|f| f.drop_ppm > 0)));
        assert!(soak
            .iter()
            .any(|s| matches!(s.family, GraphFamily::Star { .. })
                && s.faults
                    .is_some_and(|f| f.delay_ppm > 0 && f.delay_rounds > 1)));
        assert!(soak.iter().any(|s| s.algo == Algo::Bm21));
        assert!(soak.iter().any(|s| s.algo == Algo::Theorem1));
        assert!(soak
            .iter()
            .any(|s| s.problem.is_edge() && s.faults.is_some_and(|f| f.crash_ppm > 0)));
    }

    #[test]
    fn seeds_are_stable_and_family_dependent() {
        let a = Scenario::of(GraphFamily::Path { n: 8 }, ProblemKind::Mis, Algo::Trivial).build();
        let b = Scenario::of(GraphFamily::Path { n: 9 }, ProblemKind::Mis, Algo::Trivial).build();
        // same family ⇒ same seed ⇒ same graph instance, even across
        // problems/algorithms (like-for-like comparison rows)
        let c = Scenario::of(
            GraphFamily::Path { n: 8 },
            ProblemKind::Coloring,
            Algo::Bm21,
        )
        .named("other")
        .build();
        assert_eq!(a.seed(7), a.seed(7));
        assert_eq!(a.seed(7), c.seed(7));
        assert_ne!(a.seed(7), b.seed(7));
        assert_ne!(a.seed(7), a.seed(8));
    }

    #[test]
    fn families_build_the_requested_sizes() {
        assert_eq!(GraphFamily::Path { n: 5 }.build(0).n(), 5);
        assert_eq!(GraphFamily::Grid { rows: 3, cols: 4 }.build(0).n(), 12);
        let g = GraphFamily::RandomRegular { n: 32, d: 4 }.build(9);
        assert_eq!(g.n(), 32);
        assert!(g.max_degree() <= 4);
        // same seed, same graph
        assert_eq!(
            GraphFamily::Gnp { n: 40, p: 0.1 }.build(3),
            GraphFamily::Gnp { n: 40, p: 0.1 }.build(3)
        );
    }
}
