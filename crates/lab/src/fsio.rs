//! Crash-safe file writes for reports and snapshots.
//!
//! Every JSON document and checkpoint the harness persists goes through
//! [`write_atomic`]: the bytes land in a same-directory temp file first
//! and reach their final name via `rename`, which POSIX guarantees to be
//! atomic within a filesystem. A run killed mid-write therefore leaves
//! either the previous complete file or a stray `*.tmp` sibling — never a
//! truncated document under the real name. Readers look files up by their
//! exact final name, so stray temp files are ignored on resume (and a
//! later successful write replaces them).
//!
//! Rename atomicity alone only covers process crashes. Against power
//! loss, the temp file is fsynced before the rename (so the bytes are on
//! disk before the name flips) and the parent directory is fsynced after
//! (so the rename itself — a directory-entry update — is on disk too).
//! Without the second sync a crashed machine can reboot into the *old*
//! file under the final name even though the rename "succeeded".

use std::io;
use std::path::Path;

/// Extension suffix of the in-flight sibling (`report.json` is staged as
/// `report.json.tmp`).
pub const TMP_SUFFIX: &str = ".tmp";

/// Write `contents` to `path` atomically and durably: stage into
/// `<path>.tmp` in the same directory, fsync it, rename over the final
/// name, then fsync the parent directory so the rename survives power
/// loss.
///
/// # Errors
/// Any I/O error from the staging write, the syncs, or the rename; on
/// failure the final name is untouched (it either keeps its previous
/// contents or still does not exist).
pub fn write_atomic(path: &Path, contents: &[u8]) -> io::Result<()> {
    use std::io::Write as _;
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(TMP_SUFFIX);
    let tmp = std::path::PathBuf::from(tmp);
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(contents)?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, path)?;
    // Persist the directory entry. An unsyncable parent (some network or
    // pseudo filesystems reject directory fsync) downgrades gracefully to
    // the plain rename guarantee rather than failing the write.
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        if let Ok(dir) = std::fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("awake-lab-fsio-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_land_under_the_final_name_with_no_temp_residue() {
        let dir = scratch_dir("basic");
        let path = dir.join("report.json");
        write_atomic(&path, b"{\"a\": 1}\n").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"{\"a\": 1}\n");
        assert!(!dir.join("report.json.tmp").exists());
        // overwrite is atomic too
        write_atomic(&path, b"{\"a\": 2}\n").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"{\"a\": 2}\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_stray_partial_temp_file_is_invisible_to_exact_name_readers() {
        let dir = scratch_dir("stray");
        let path = dir.join("ckpt.bin");
        // simulate a kill mid-write: only the temp sibling exists, torn
        std::fs::write(dir.join("ckpt.bin.tmp"), b"PARTIAL").unwrap();
        assert!(!path.exists(), "readers see no file under the final name");
        // the retried write replaces the stray temp and completes
        write_atomic(&path, b"FULL").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"FULL");
        assert!(!dir.join("ckpt.bin.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
