//! The shared report model: one schema for suite runs and micro benches.
//!
//! Two layers:
//!
//! * [`Report`] / [`ScenarioReport`] / [`ScenarioMetrics`] — the output of
//!   a suite run (`awake-lab/report/v2`). The *canonical* JSON form
//!   ([`Report::canonical_json`]) contains only deterministic fields and is
//!   byte-stable across runs at a fixed seed; [`Report::to_json`] adds the
//!   per-scenario wall time and allocation counts.
//! * [`PerfStats`] / [`BenchReport`] — the micro-bench schema
//!   (`awake-lab/bench/v1`, the shape of `BENCH_engine.json`). The bench
//!   crate emits through these types, so the CI baseline differ and the
//!   suite runner read one format.

use awake_core::compose::Composition;
use awake_sleeping::{percentile_of_sorted, Metrics, PhaseTimes};
use std::fmt::Write as _;

/// Deterministic per-scenario measurements.
///
/// Every field is a pure function of (scenario, seed): two runs of the same
/// scenario — serial or sharded, debug or release — must compare equal.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioMetrics {
    /// Round complexity (last round any node was awake).
    pub rounds: u64,
    /// Awake complexity (max over nodes of awake rounds).
    pub max_awake: u64,
    /// Median of the per-node awake distribution (nearest rank).
    pub awake_p50: u64,
    /// 99th percentile of the per-node awake distribution (nearest rank) —
    /// together with `awake_p50` this catches hot *nodes*, not just the
    /// maximum.
    pub awake_p99: u64,
    /// Total awake node-rounds (≈ simulation work).
    pub total_awake: u64,
    /// Node-averaged awake rounds.
    pub avg_awake: f64,
    /// Messages handed to the engine.
    pub messages_sent: u64,
    /// Messages lost to sleeping/halted recipients.
    pub messages_lost: u64,
    /// Messages dropped by an injected [`awake_sleeping::FaultPlan`]
    /// (`0` on fault-free runs — distinct from `messages_lost`, which
    /// counts the model's own asleep-recipient losses).
    pub faults_dropped: u64,
    /// Messages duplicated by fault injection.
    pub faults_duplicated: u64,
    /// Messages delayed by fault injection.
    pub faults_delayed: u64,
    /// Node crash-restarts injected.
    pub faults_crashed: u64,
    /// Rounds in which at least one node was recovering from a crash
    /// (zero on fault-free runs).
    pub recovery_rounds: u64,
    /// Awake node-rounds spent recovering from crashes — the energy
    /// overhead of recovery, the quantity the degraded budgets bound
    /// (zero on fault-free runs).
    pub recovery_awake: u64,
    /// Total awake node-round events executed — the Sleeping model's cost
    /// unit, which the event-compressed executors' wall time is
    /// proportional to (equals `total_awake`; kept as its own column so
    /// the compression gate reads it without re-deriving).
    pub awake_events: u64,
    /// Virtual rounds jumped without per-round work (no node awake):
    /// `rounds − rounds_skipped` is the number of rounds actually executed.
    pub rounds_skipped: u64,
}

impl ScenarioMetrics {
    /// Collect from a single engine run (one sort serves both percentile
    /// columns).
    pub fn from_metrics(m: &Metrics) -> Self {
        let mut sorted = m.awake.clone();
        sorted.sort_unstable();
        ScenarioMetrics {
            rounds: m.rounds,
            max_awake: m.max_awake(),
            awake_p50: percentile_of_sorted(&sorted, 50),
            awake_p99: percentile_of_sorted(&sorted, 99),
            total_awake: m.total_awake(),
            avg_awake: m.avg_awake(),
            messages_sent: m.messages_sent,
            messages_lost: m.messages_lost,
            faults_dropped: m.faults_dropped,
            faults_duplicated: m.faults_duplicated,
            faults_delayed: m.faults_delayed,
            faults_crashed: m.faults_crashed,
            recovery_rounds: m.recovery_rounds,
            recovery_awake: m.recovery_awake,
            awake_events: m.awake_events,
            rounds_skipped: m.rounds_skipped,
        }
    }

    /// Collect from a staged pipeline (Lemma 8 additive accounting: the
    /// percentiles are taken over the per-node sums across stages, and the
    /// fault/recovery counters sum like every other quantity).
    pub fn from_composition(c: &Composition) -> Self {
        let mut per_node = c.awake_per_node();
        let (total_awake, max_awake) = (per_node.iter().sum(), c.max_awake());
        per_node.sort_unstable();
        ScenarioMetrics {
            rounds: c.rounds(),
            max_awake,
            awake_p50: percentile_of_sorted(&per_node, 50),
            awake_p99: percentile_of_sorted(&per_node, 99),
            total_awake,
            avg_awake: c.avg_awake(),
            messages_sent: c.messages_sent(),
            messages_lost: c.messages_lost(),
            faults_dropped: c.faults_dropped(),
            faults_duplicated: c.faults_duplicated(),
            faults_delayed: c.faults_delayed(),
            faults_crashed: c.faults_crashed(),
            recovery_rounds: c.recovery_rounds(),
            recovery_awake: c.recovery_awake(),
            awake_events: c.awake_events(),
            rounds_skipped: c.rounds_skipped(),
        }
    }
}

/// Non-deterministic measurements: excluded from the canonical JSON form
/// and from determinism comparisons.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Timing {
    /// Wall-clock time for the scenario (graph build + solve + validate).
    pub wall_ns: f64,
    /// Heap allocations during the scenario, when the host binary installs
    /// a counting allocator (see [`crate::runner::Runner::with_alloc_probe`]);
    /// `0` otherwise. Attribution is only exact on a serial runner.
    pub allocations: u64,
}

/// The result of one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name (unique within the suite).
    pub name: String,
    /// Problem label ([`crate::scenario::ProblemKind::key`]).
    pub problem: &'static str,
    /// Graph-family label ([`crate::scenario::GraphFamily::key`]).
    pub family: String,
    /// Solver label ([`crate::scenario::Algo::key`]).
    pub algo: String,
    /// The derived per-scenario RNG seed actually used.
    pub seed: u64,
    /// Nodes in the built graph.
    pub n: usize,
    /// Edges in the built graph.
    pub m: usize,
    /// Whether the problem validator accepted the outputs.
    pub valid: bool,
    /// The closed-form awake budget of (algo × problem class × graph) —
    /// [`awake_core::bounds::budget_for`] with this scenario's parameters.
    pub awake_bound: u64,
    /// The closed-form round budget, same source.
    pub round_bound: u64,
    /// The audit verdict: `max_awake ≤ awake_bound && rounds ≤
    /// round_bound`. `suite --audit` fails on any `false`.
    pub bound_ok: bool,
    /// Deterministic measurements.
    pub metrics: ScenarioMetrics,
    /// Wall time / allocations (non-deterministic).
    pub timing: Timing,
}

/// The result of a suite run.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Suite name (preset name, or a caller-chosen label).
    pub suite: String,
    /// The suite seed every scenario seed was derived from.
    pub seed: u64,
    /// Per-scenario results, in suite order (independent of sharding).
    pub scenarios: Vec<ScenarioReport>,
}

/// Schema tag of [`Report`] JSON documents. `v2` added the budget-audit
/// columns (`awake_bound`, `round_bound`, `bound_ok`) and the per-node
/// awake percentiles (`awake_p50`, `awake_p99`); `v3` added the four
/// fault-injection counters (`faults_dropped`, `faults_duplicated`,
/// `faults_delayed`, `faults_crashed`) to every scenario row; `v4` added
/// the event-compression counters (`awake_events`, `rounds_skipped`);
/// `v5` added the crash-recovery counters (`recovery_rounds`,
/// `recovery_awake` — zero on fault-free rows) and made the budget columns
/// of fault-injected rows carry the *degraded* budgets
/// ([`awake_core::bounds::degraded_budget_for`]), so `bound_ok` is a real
/// gate on every row — see the migration notes in `CHANGES.md`.
pub const REPORT_SCHEMA: &str = "awake-lab/report/v5";
/// Schema tag of [`BenchReport`] JSON documents (`BENCH_engine.json`).
pub const BENCH_SCHEMA: &str = "awake-lab/bench/v1";

impl Report {
    /// Full JSON document, including per-scenario timing.
    pub fn to_json(&self) -> String {
        self.json(true)
    }

    /// Deterministic JSON document: timing omitted. Byte-stable across
    /// runs, executors, shard counts, and build profiles at a fixed seed —
    /// the form the golden-snapshot test pins.
    pub fn canonical_json(&self) -> String {
        self.json(false)
    }

    fn json(&self, timings: bool) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"schema\": \"{REPORT_SCHEMA}\",\n  \"suite\": {},\n  \"seed\": {},\n  \"scenarios\": [",
            json_str(&self.suite),
            self.seed
        );
        for (i, s) in self.scenarios.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"name\": {}, \"problem\": {}, \"family\": {}, \"algo\": {}, \
                 \"seed\": {}, \"n\": {}, \"m\": {}, \"valid\": {}, \
                 \"rounds\": {}, \"max_awake\": {}, \"awake_p50\": {}, \"awake_p99\": {}, \
                 \"total_awake\": {}, \"avg_awake\": {:.3}, \
                 \"messages_sent\": {}, \"messages_lost\": {}, \
                 \"faults_dropped\": {}, \"faults_duplicated\": {}, \
                 \"faults_delayed\": {}, \"faults_crashed\": {}, \
                 \"recovery_rounds\": {}, \"recovery_awake\": {}, \
                 \"awake_events\": {}, \"rounds_skipped\": {}, \
                 \"awake_bound\": {}, \"round_bound\": {}, \"bound_ok\": {}",
                json_str(&s.name),
                json_str(s.problem),
                json_str(&s.family),
                json_str(&s.algo),
                s.seed,
                s.n,
                s.m,
                s.valid,
                s.metrics.rounds,
                s.metrics.max_awake,
                s.metrics.awake_p50,
                s.metrics.awake_p99,
                s.metrics.total_awake,
                s.metrics.avg_awake,
                s.metrics.messages_sent,
                s.metrics.messages_lost,
                s.metrics.faults_dropped,
                s.metrics.faults_duplicated,
                s.metrics.faults_delayed,
                s.metrics.faults_crashed,
                s.metrics.recovery_rounds,
                s.metrics.recovery_awake,
                s.metrics.awake_events,
                s.metrics.rounds_skipped,
                s.awake_bound,
                s.round_bound,
                s.bound_ok,
            );
            if timings {
                let _ = write!(
                    out,
                    ", \"wall_ms\": {:.3}, \"allocations\": {}",
                    s.timing.wall_ns / 1e6,
                    s.timing.allocations
                );
            }
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// An aligned text table of the suite (one row per scenario).
    pub fn text_table(&self) -> String {
        let mut out = String::new();
        let name_w = self
            .scenarios
            .iter()
            .map(|s| s.name.chars().count())
            .max()
            .unwrap_or(8)
            .max(8);
        let _ = writeln!(
            out,
            "{:<name_w$} {:>6} {:>7} {:>9} {:>9} {:>7} {:>7} {:>9} {:>10} {:>9} {:>6} {:>6}",
            "scenario",
            "n",
            "m",
            "rounds",
            "awake",
            "p50",
            "p99",
            "bound",
            "msgs",
            "wall ms",
            "valid",
            "≤bound"
        );
        let _ = writeln!(out, "{}", "-".repeat(name_w + 96));
        for s in &self.scenarios {
            let _ = writeln!(
                out,
                "{:<name_w$} {:>6} {:>7} {:>9} {:>9} {:>7} {:>7} {:>9} {:>10} {:>9.2} {:>6} {:>6}",
                s.name,
                s.n,
                s.m,
                s.metrics.rounds,
                s.metrics.max_awake,
                s.metrics.awake_p50,
                s.metrics.awake_p99,
                s.awake_bound,
                s.metrics.messages_sent,
                s.timing.wall_ns / 1e6,
                if s.valid { "yes" } else { "NO" },
                if s.bound_ok { "yes" } else { "NO" },
            );
        }
        out
    }
}

/// Schema tag of the energy-trajectory document (`BENCH_energy.json`).
/// `v2` added the per-point compression telemetry: `awake_events` (the
/// Sleeping model's cost unit), `rounds_skipped` (virtual rounds jumped by
/// the batch-cascade), and `wall_ms` — together they let CI budget the
/// sweep and gate the `wall_ms / awake_events` compression ratio.
pub const ENERGY_SCHEMA: &str = "awake-lab/energy/v2";

/// Render a suite report as the `BENCH_energy.json` document: one point
/// per scenario, relating the **measured** awake complexity to the
/// closed-form bound and to `log₂ n`. For the `scaling` preset (Theorem 1
/// and BM21 swept over `n ∈ {2^10 .. 2^21}`) the `awake_per_log2n` series
/// is the paper's headline claim made empirical — `O(√log n · log* n)` is
/// `o(log n)`, so the ratio must trend *down* as `n` grows.
pub fn energy_json(report: &Report) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"schema\": \"{ENERGY_SCHEMA}\",\n  \"suite\": {},\n  \"seed\": {},\n  \"points\": [",
        json_str(&report.suite),
        report.seed
    );
    for (i, s) in report.scenarios.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let log2n = (s.n.max(2) as f64).log2();
        let _ = write!(
            out,
            "\n    {{\"algo\": {}, \"family\": {}, \"n\": {}, \"log2_n\": {:.3}, \
             \"max_awake\": {}, \"awake_bound\": {}, \
             \"awake_per_log2n\": {:.3}, \"bound_per_log2n\": {:.3}, \
             \"rounds\": {}, \"round_bound\": {}, \"bound_ok\": {}, \
             \"awake_events\": {}, \"rounds_skipped\": {}, \"wall_ms\": {:.3}}}",
            json_str(&s.algo),
            json_str(&s.family),
            s.n,
            log2n,
            s.metrics.max_awake,
            s.awake_bound,
            s.metrics.max_awake as f64 / log2n,
            s.awake_bound as f64 / log2n,
            s.metrics.rounds,
            s.round_bound,
            s.bound_ok,
            s.metrics.awake_events,
            s.metrics.rounds_skipped,
            s.timing.wall_ns / 1e6,
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Raw counters of one timed benchmark workload; the derived rates are the
/// section fields of `BENCH_engine.json`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfStats {
    /// Awake node-rounds executed.
    pub node_rounds: u64,
    /// Messages handed to the engine.
    pub messages: u64,
    /// Heap allocations during the timed window.
    pub allocations: u64,
    /// Elapsed wall time, nanoseconds.
    pub wall_ns: f64,
}

impl PerfStats {
    /// Nanoseconds per awake node-round.
    pub fn ns_per_node_round(&self) -> f64 {
        self.wall_ns / self.node_rounds as f64
    }

    /// Awake node-rounds per second — the headline throughput metric the
    /// CI regression gate checks.
    pub fn node_rounds_per_sec(&self) -> f64 {
        self.node_rounds as f64 / (self.wall_ns / 1e9)
    }

    /// Messages per second.
    pub fn messages_per_sec(&self) -> f64 {
        self.messages as f64 / (self.wall_ns / 1e9)
    }

    /// Heap allocations per awake node-round — the zero-allocation
    /// steady-state claim as a number.
    pub fn allocations_per_node_round(&self) -> f64 {
        self.allocations as f64 / self.node_rounds as f64
    }

    /// One JSON section, the exact field set of `BENCH_engine.json`.
    pub fn section_json(&self) -> String {
        format!(
            "{{\"ns_per_node_round\": {:.2}, \"node_rounds_per_sec\": {:.0}, \
             \"messages_per_sec\": {:.0}, \"allocations\": {}, \
             \"allocations_per_node_round\": {:.4}}}",
            self.ns_per_node_round(),
            self.node_rounds_per_sec(),
            self.messages_per_sec(),
            self.allocations,
            self.allocations_per_node_round()
        )
    }
}

/// One worker-count row of the [`ThreadedScaling`] section.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingRow {
    /// Worker threads used.
    pub workers: usize,
    /// Measured stats at that worker count.
    pub stats: PerfStats,
}

/// The `threaded_scaling` section of `BENCH_engine.json`: one dense
/// workload at delivery-pipeline scale, run on the serial engine and on
/// the worker-pool executor at several worker counts. The
/// [`w4_vs_serial`](Self::w4_vs_serial) ratio is measured within one
/// process on one machine, so it is portable across hardware — the CI
/// gate tracks it to catch delivery-pipeline regressions that the serial
/// rows are blind to.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadedScaling {
    /// Nodes.
    pub n: usize,
    /// Approximate degree.
    pub degree: usize,
    /// Rounds simulated.
    pub rounds: u64,
    /// The serial engine on the same workload (the ratio denominator).
    pub serial: PerfStats,
    /// Worker-pool rows, ascending by worker count.
    pub rows: Vec<ScalingRow>,
}

impl ThreadedScaling {
    /// 4-worker throughput over serial — the portable pipeline-health
    /// ratio. `None` if no 4-worker row was measured.
    pub fn w4_vs_serial(&self) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.workers == 4)
            .map(|r| r.stats.node_rounds_per_sec() / self.serial.node_rounds_per_sec())
    }

    fn section_json(&self) -> String {
        let mut out = format!(
            "{{\n    \"n\": {}, \"degree\": {}, \"rounds\": {},\n    \"serial\": {}",
            self.n,
            self.degree,
            self.rounds,
            self.serial.section_json()
        );
        for row in &self.rows {
            let _ = write!(
                out,
                ",\n    \"w{}\": {}",
                row.workers,
                row.stats.section_json()
            );
        }
        if let Some(r) = self.w4_vs_serial() {
            let _ = write!(out, ",\n    \"w4_vs_serial\": {r:.3}");
        }
        out.push_str("\n  }");
        out
    }
}

/// The `phase_times` section of `BENCH_engine.json`: where a worker-pool
/// round's wall time goes, collected by
/// `awake_sleeping::threaded::run_threaded_timed` on the scaling workload.
/// Phase splits move with hardware and load, so these rows never gate in
/// `baselines::diff_bench` — they are the forensic context for a
/// `w4_vs_serial` regression: *which* pipeline stage ate the time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseTimesBench {
    /// Worker threads the timed run used.
    pub workers: usize,
    /// Rounds that went through the dispatched multi-chunk pipeline.
    pub dispatched_rounds: u64,
    /// Rounds absorbed whole by the coordinator's inline fast path.
    pub inline_rounds: u64,
    /// Awake-set partitioning + job publication, ns per executed round.
    pub partition_ns_per_round: f64,
    /// Send-descriptor (route) wait, ns per dispatched round.
    pub route_ns_per_round: f64,
    /// Receive-descriptor (deliver) wait, ns per dispatched round.
    pub deliver_ns_per_round: f64,
    /// Coordinator-side merge/apply, ns per dispatched round.
    pub merge_ns_per_round: f64,
    /// Inline fast path end to end, ns per inline round.
    pub inline_ns_per_round: f64,
}

impl PhaseTimesBench {
    /// Collect from a [`PhaseTimes`] accumulated over one or more timed
    /// runs at `workers` threads.
    pub fn from_phase_times(workers: usize, t: &PhaseTimes) -> Self {
        PhaseTimesBench {
            workers,
            dispatched_rounds: t.dispatched_rounds,
            inline_rounds: t.inline_rounds,
            partition_ns_per_round: t.partition_ns_per_round(),
            route_ns_per_round: t.route_ns_per_round(),
            deliver_ns_per_round: t.deliver_ns_per_round(),
            merge_ns_per_round: t.merge_ns_per_round(),
            inline_ns_per_round: t.inline_ns_per_round(),
        }
    }

    fn section_json(&self) -> String {
        format!(
            "{{\n    \"workers\": {}, \"dispatched_rounds\": {}, \"inline_rounds\": {},\n    \
             \"partition_ns_per_round\": {:.1}, \"route_ns_per_round\": {:.1}, \
             \"deliver_ns_per_round\": {:.1}, \"merge_ns_per_round\": {:.1}, \
             \"inline_ns_per_round\": {:.1}\n  }}",
            self.workers,
            self.dispatched_rounds,
            self.inline_rounds,
            self.partition_ns_per_round,
            self.route_ns_per_round,
            self.deliver_ns_per_round,
            self.merge_ns_per_round,
            self.inline_ns_per_round,
        )
    }
}

/// The `edge_problems` section of `BENCH_engine.json`: the line-graph
/// virtualization adapter solving maximal matching and (2Δ−1)-edge
/// coloring on one seeded workload — the edge-workload throughput the CI
/// gate tracks alongside the vertex-problem engine numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeProblemsBench {
    /// Nodes of the host graph.
    pub n: usize,
    /// Edges of the host graph (= virtual nodes simulated).
    pub m: usize,
    /// Maximal matching through the adapter (serial engine).
    pub matching: PerfStats,
    /// (2Δ−1)-edge coloring through the adapter (serial engine).
    pub edge_coloring: PerfStats,
}

impl EdgeProblemsBench {
    fn section_json(&self) -> String {
        format!(
            "{{\n    \"n\": {}, \"m\": {},\n    \"matching\": {},\n    \"edge_coloring\": {}\n  }}",
            self.n,
            self.m,
            self.matching.section_json(),
            self.edge_coloring.section_json()
        )
    }
}

/// The micro-bench report (`BENCH_engine.json`): current serial engine,
/// worker-pool executor, the in-bench legacy reconstruction — every
/// report carries its own baseline — the threaded-scaling sweep, and the
/// edge-problem adapter workload.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Workload label (e.g. `"engine/flood"`).
    pub bench: String,
    /// Nodes.
    pub n: usize,
    /// Approximate degree.
    pub degree: usize,
    /// Rounds simulated.
    pub rounds: u64,
    /// Detected core count of the machine that produced the report
    /// (`std::thread::available_parallelism`, `0` = detection failed). CI
    /// reads this to demote multi-worker throughput ratios to
    /// informational rows on runners that cannot physically exhibit
    /// parallel speedup (see `baselines::diff_bench`).
    pub cores: usize,
    /// The current serial engine.
    pub engine: PerfStats,
    /// The worker-pool executor (4 workers).
    pub threaded_4_workers: PerfStats,
    /// The pre-optimization hot-path reconstruction.
    pub legacy_baseline: PerfStats,
    /// Worker-count sweep of the delivery pipeline at a larger n.
    pub threaded_scaling: ThreadedScaling,
    /// Per-phase wall-time attribution of the worker-pool pipeline on the
    /// scaling workload (informational in the CI gate).
    pub phase_times: PhaseTimesBench,
    /// Edge problems through the line-graph adapter.
    pub edge_problems: EdgeProblemsBench,
}

impl BenchReport {
    /// Serial-engine throughput over the legacy reconstruction — the
    /// machine-portable speedup figure.
    pub fn speedup_vs_legacy(&self) -> f64 {
        self.engine.node_rounds_per_sec() / self.legacy_baseline.node_rounds_per_sec()
    }

    /// The full `BENCH_engine.json` document.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"schema\": \"{BENCH_SCHEMA}\",\n  \"bench\": {},\n  \"n\": {},\n  \
             \"degree\": {},\n  \"rounds\": {},\n  \"cores\": {},\n  \"engine\": {},\n  \
             \"threaded_4_workers\": {},\n  \"legacy_baseline\": {},\n  \
             \"threaded_scaling\": {},\n  \"phase_times\": {},\n  \"edge_problems\": {},\n  \
             \"speedup_vs_legacy\": {:.3}\n}}\n",
            json_str(&self.bench),
            self.n,
            self.degree,
            self.rounds,
            self.cores,
            self.engine.section_json(),
            self.threaded_4_workers.section_json(),
            self.legacy_baseline.section_json(),
            self.threaded_scaling.section_json(),
            self.phase_times.section_json(),
            self.edge_problems.section_json(),
            self.speedup_vs_legacy()
        )
    }
}

/// Escape a string as a JSON string literal.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            suite: "t".into(),
            seed: 1,
            scenarios: vec![ScenarioReport {
                name: "mis/path-4/trivial".into(),
                problem: "mis",
                family: "path-4".into(),
                algo: "trivial".into(),
                seed: 99,
                n: 4,
                m: 3,
                valid: true,
                awake_bound: 5,
                round_bound: 5,
                bound_ok: true,
                metrics: ScenarioMetrics {
                    rounds: 5,
                    max_awake: 3,
                    awake_p50: 2,
                    awake_p99: 3,
                    total_awake: 10,
                    avg_awake: 2.5,
                    messages_sent: 12,
                    messages_lost: 2,
                    faults_dropped: 1,
                    faults_duplicated: 0,
                    faults_delayed: 0,
                    faults_crashed: 4,
                    recovery_rounds: 6,
                    recovery_awake: 9,
                    awake_events: 10,
                    rounds_skipped: 2,
                },
                timing: Timing {
                    wall_ns: 1.5e6,
                    allocations: 7,
                },
            }],
        }
    }

    #[test]
    fn canonical_json_omits_timing() {
        let r = sample();
        let full = r.to_json();
        let canon = r.canonical_json();
        assert!(full.contains("wall_ms"));
        assert!(full.contains("allocations"));
        assert!(!canon.contains("wall_ms"));
        assert!(!canon.contains("allocations"));
        assert!(canon.contains("\"schema\": \"awake-lab/report/v5\""));
        // the audit, percentile, fault, recovery and compression columns
        // are deterministic, hence canonical
        for key in [
            "\"awake_p50\": 2",
            "\"awake_p99\": 3",
            "\"faults_dropped\": 1",
            "\"faults_duplicated\": 0",
            "\"faults_delayed\": 0",
            "\"faults_crashed\": 4",
            "\"recovery_rounds\": 6",
            "\"recovery_awake\": 9",
            "\"awake_events\": 10",
            "\"rounds_skipped\": 2",
            "\"awake_bound\": 5",
            "\"round_bound\": 5",
            "\"bound_ok\": true",
        ] {
            assert!(canon.contains(key), "missing {key} in {canon}");
        }
    }

    #[test]
    fn energy_json_relates_measured_to_bound_and_log_n() {
        let mut r = sample();
        r.scenarios[0].n = 1024;
        let j = energy_json(&r);
        for key in [
            "\"schema\": \"awake-lab/energy/v2\"",
            "\"n\": 1024",
            "\"log2_n\": 10.000",
            "\"max_awake\": 3",
            "\"awake_bound\": 5",
            "\"awake_per_log2n\": 0.300",
            "\"bound_per_log2n\": 0.500",
            "\"round_bound\": 5",
            "\"bound_ok\": true",
            "\"awake_events\": 10",
            "\"rounds_skipped\": 2",
            "\"wall_ms\": 1.500",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }

    #[test]
    fn canonical_json_ignores_timing_values() {
        let mut a = sample();
        let mut b = sample();
        a.scenarios[0].timing.wall_ns = 1.0;
        b.scenarios[0].timing.wall_ns = 2.0;
        assert_eq!(a.canonical_json(), b.canonical_json());
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn perf_stats_derivations() {
        let p = PerfStats {
            node_rounds: 1000,
            messages: 4000,
            allocations: 10,
            wall_ns: 1e6,
        };
        assert!((p.ns_per_node_round() - 1000.0).abs() < 1e-9);
        assert!((p.node_rounds_per_sec() - 1e6).abs() < 1e-3);
        assert!((p.messages_per_sec() - 4e6).abs() < 1e-3);
        assert!((p.allocations_per_node_round() - 0.01).abs() < 1e-12);
        let j = p.section_json();
        assert!(j.contains("\"node_rounds_per_sec\": 1000000"));
    }

    #[test]
    fn phase_times_bench_divides_by_the_right_round_counts() {
        let t = PhaseTimes {
            partition_ns: 1000,
            route_ns: 800,
            deliver_ns: 600,
            merge_ns: 400,
            inline_ns: 300,
            dispatched_rounds: 4,
            inline_rounds: 1,
        };
        let b = PhaseTimesBench::from_phase_times(4, &t);
        assert_eq!(b.workers, 4);
        // Partition covers every executed round (5); the dispatched-only
        // stages divide by dispatched rounds (4); inline by inline (1).
        assert!((b.partition_ns_per_round - 200.0).abs() < 1e-9);
        assert!((b.route_ns_per_round - 200.0).abs() < 1e-9);
        assert!((b.deliver_ns_per_round - 150.0).abs() < 1e-9);
        assert!((b.merge_ns_per_round - 100.0).abs() < 1e-9);
        assert!((b.inline_ns_per_round - 300.0).abs() < 1e-9);
    }

    #[test]
    fn bench_report_json_shape() {
        let p = PerfStats {
            node_rounds: 100,
            messages: 100,
            allocations: 0,
            wall_ns: 1e6,
        };
        let scaling = ThreadedScaling {
            n: 64,
            degree: 4,
            rounds: 5,
            serial: p,
            rows: vec![
                ScalingRow {
                    workers: 1,
                    stats: p,
                },
                ScalingRow {
                    workers: 4,
                    stats: PerfStats { wall_ns: 5e5, ..p },
                },
            ],
        };
        assert!((scaling.w4_vs_serial().unwrap() - 2.0).abs() < 1e-9);
        let b = BenchReport {
            bench: "engine/flood".into(),
            n: 8,
            degree: 2,
            rounds: 3,
            cores: 4,
            engine: p,
            threaded_4_workers: p,
            legacy_baseline: PerfStats { wall_ns: 2e6, ..p },
            threaded_scaling: scaling,
            phase_times: PhaseTimesBench {
                workers: 4,
                dispatched_rounds: 4,
                inline_rounds: 1,
                partition_ns_per_round: 120.5,
                route_ns_per_round: 300.0,
                deliver_ns_per_round: 250.0,
                merge_ns_per_round: 180.0,
                inline_ns_per_round: 90.0,
            },
            edge_problems: EdgeProblemsBench {
                n: 8,
                m: 12,
                matching: p,
                edge_coloring: p,
            },
        };
        assert!((b.speedup_vs_legacy() - 2.0).abs() < 1e-9);
        let j = b.to_json();
        for key in [
            "\"schema\"",
            "\"engine\"",
            "\"threaded_4_workers\"",
            "\"legacy_baseline\"",
            "\"threaded_scaling\"",
            "\"w1\"",
            "\"w4\"",
            "\"w4_vs_serial\": 2.000",
            "\"cores\": 4",
            "\"phase_times\"",
            "\"dispatched_rounds\": 4",
            "\"inline_rounds\": 1",
            "\"partition_ns_per_round\": 120.5",
            "\"route_ns_per_round\": 300.0",
            "\"deliver_ns_per_round\": 250.0",
            "\"merge_ns_per_round\": 180.0",
            "\"inline_ns_per_round\": 90.0",
            "\"edge_problems\"",
            "\"matching\"",
            "\"edge_coloring\"",
            "\"speedup_vs_legacy\": 2.000",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }

    #[test]
    fn scaling_without_w4_row_omits_the_ratio() {
        let p = PerfStats {
            node_rounds: 100,
            messages: 100,
            allocations: 0,
            wall_ns: 1e6,
        };
        let scaling = ThreadedScaling {
            n: 64,
            degree: 4,
            rounds: 5,
            serial: p,
            rows: vec![ScalingRow {
                workers: 2,
                stats: p,
            }],
        };
        assert_eq!(scaling.w4_vs_serial(), None);
        assert!(!scaling.section_json().contains("w4_vs_serial"));
    }

    #[test]
    fn text_table_has_one_row_per_scenario() {
        let t = sample().text_table();
        assert_eq!(t.lines().count(), 3); // header + rule + 1 row
        assert!(t.contains("mis/path-4/trivial"));
    }
}
