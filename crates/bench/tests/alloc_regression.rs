//! Allocation-count regression test for the line-graph edge adapter.
//!
//! PRs 1–9 drove the engine's vertex hot path to a zero-allocation steady
//! state; the edge adapter used to undo that by cloning the problem and
//! the full input vector into every replica and by re-allocating merge /
//! scratch buffers each virtual round — 3.7–3.9 heap allocations per
//! awake node-round at the bench workload. With the shared-`Arc` greedy
//! state and pooled host scratch the steady-state rate is pinned here at
//! ≤ 0.1 allocations per node-round: a new per-round or per-replica
//! allocation on the adapter path shows up as ≈ +1.0 and fails loudly,
//! while one-time setup (graph, index, hosts, engine arenas) is excluded
//! from the counted window.
//!
//! The counting allocator is test-local: integration tests are separate
//! binaries, so installing it here does not affect any other test.

use awake_core::linegraph::{self, EdgeGreedy, LineGraphHost};
use awake_graphs::{generators, Graph};
use awake_olocal::edge::{EdgeColoring, EdgeIndex, EdgeProblem, MaximalMatching};
use awake_sleeping::{Config, Engine};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Steady-state allocations per awake node-round for `problem` on `g`:
/// hosts are built *outside* the counted window (per-replica construction
/// is setup, not steady state), the engine run is counted.
fn engine_allocs_per_node_round<P>(g: &Graph, problem: &P, inputs: &[P::Input]) -> f64
where
    P: EdgeProblem + Clone,
{
    let idx = EdgeIndex::new(g);
    let programs: Vec<LineGraphHost<EdgeGreedy<P>>> =
        linegraph::greedy_hosts(g, &idx, problem, inputs);
    let a0 = alloc_count();
    let run = Engine::new(g, Config::default()).run(programs).unwrap();
    let allocs = alloc_count() - a0;
    println!(
        "  run window: {} allocs / {} node-rounds",
        allocs,
        run.metrics.total_awake()
    );
    allocs as f64 / run.metrics.total_awake() as f64
}

#[test]
fn edge_adapter_steady_state_stays_allocation_free() {
    let g = generators::random_regular(2048, 8, 2);
    let idx = EdgeIndex::new(&g);
    let inputs = vec![(); idx.m()];

    let matching = engine_allocs_per_node_round(&g, &MaximalMatching, &inputs);
    let coloring = engine_allocs_per_node_round(&g, &EdgeColoring, &inputs);
    println!("edge adapter allocs/node-round: matching {matching:.4}, coloring {coloring:.4}");
    assert!(
        matching <= 0.1,
        "matching adapter steady state regressed: {matching:.4} allocs/node-round (cap 0.1)"
    );
    assert!(
        coloring <= 0.1,
        "edge-coloring adapter steady state regressed: {coloring:.4} allocs/node-round (cap 0.1)"
    );
}
