//! Shared helpers for the experiment harness.
//!
//! Each `benches/exp_*.rs` target regenerates one evaluation artifact of
//! the paper (see DESIGN.md §4 and EXPERIMENTS.md) and prints a table.

use awake_core::trivial::TrivialGreedy;
use awake_graphs::Graph;
use awake_olocal::OLocalProblem;
use awake_sleeping::{Config, Engine, Metrics};

/// Run the trivial baseline and return its metrics.
pub fn run_trivial<P: OLocalProblem + Clone>(g: &Graph, p: &P) -> Metrics {
    let inputs = p.trivial_inputs(g);
    let programs: Vec<TrivialGreedy<P>> = g
        .nodes()
        .map(|v| TrivialGreedy::new(p.clone(), inputs[v.index()].clone()))
        .collect();
    Engine::new(g, Config::default())
        .run(programs)
        .expect("trivial baseline runs")
        .metrics
}

/// Print a table header and a separator sized to it.
pub fn header(cols: &str) {
    println!("{cols}");
    println!("{}", "-".repeat(cols.len().min(120)));
}
