//! Criterion micro-benchmarks for the substrate: engine throughput, the
//! Lemma 10 mapping, Linial reduction steps, and graph operations.

use awake_core::lemma10::PaletteTree;
use awake_core::linial;
use awake_graphs::{generators, ops, traversal, NodeId};
use awake_sleeping::{Action, Config, Engine, Envelope, Outgoing, Program, View};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

/// A flood program: every node broadcasts its best-known ident for `t`
/// rounds — a dense all-awake workload for engine throughput.
struct Flood {
    best: u64,
    t: u64,
}
impl Program for Flood {
    type Msg = u64;
    type Output = u64;
    fn send(&mut self, _: &View) -> Vec<Outgoing<u64>> {
        vec![Outgoing::Broadcast(self.best)]
    }
    fn receive(&mut self, view: &View, inbox: &[Envelope<u64>]) -> Action {
        self.best = self.best.max(view.ident);
        for e in inbox {
            self.best = self.best.max(e.msg);
        }
        if view.round >= self.t {
            Action::Halt
        } else {
            Action::Stay
        }
    }
    fn output(&self) -> Option<u64> {
        Some(self.best)
    }
}

fn bench_engine(c: &mut Criterion) {
    let g = generators::random_regular(256, 8, 1);
    c.bench_function("engine/flood-256x10", |b| {
        b.iter_batched(
            || {
                (0..256)
                    .map(|_| Flood { best: 0, t: 10 })
                    .collect::<Vec<_>>()
            },
            |progs| {
                let run = Engine::new(&g, Config::default()).run(progs).unwrap();
                black_box(run.metrics.rounds)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_lemma10(c: &mut Criterion) {
    let t = PaletteTree::new(1 << 12);
    c.bench_function("lemma10/r-path-4096", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for color in 1..=4096u64 {
                acc += t.r(black_box(color)).len() as u64;
            }
            acc
        })
    });
}

fn bench_linial(c: &mut Criterion) {
    let step = linial::step_params(1 << 20, 16);
    let neighbors: Vec<u64> = (0..16).map(|i| i * 991 + 7).collect();
    c.bench_function("linial/reduce-color", |b| {
        b.iter(|| linial::reduce_color(black_box(123_456), &neighbors, step))
    });
    c.bench_function("linial/schedule-from-2^40", |b| {
        b.iter(|| linial::schedule(black_box(1u64 << 40), 16).len())
    });
}

fn bench_graphs(c: &mut Criterion) {
    let g = generators::gnp(512, 0.05, 3);
    c.bench_function("graphs/square-512", |b| b.iter(|| ops::square(&g).m()));
    c.bench_function("graphs/bfs-512", |b| {
        b.iter(|| traversal::bfs_distances(&g, NodeId(0)).len())
    });
}

criterion_group!(benches, bench_engine, bench_lemma10, bench_linial, bench_graphs);
criterion_main!(benches);
