//! Micro-benchmarks for the substrate: engine throughput, the Lemma 10
//! mapping, Linial reduction steps, and graph operations.
//!
//! Run with `cargo bench --bench micro`. Emits `BENCH_engine.json`
//! (override the path with `BENCH_OUT`) through the shared
//! `awake_lab::report::{PerfStats, BenchReport}` schema — the same format
//! the scenario suite and the CI baseline differ consume — so the engine's
//! perf trajectory is machine-readable across PRs: ns per awake node-round,
//! node-rounds/sec,
//! messages/sec, and heap allocations per node-round — for the current
//! executors *and* for a faithful in-bench reconstruction of the
//! pre-optimization hot path (binary-heap scheduler, per-send `Vec`,
//! per-node `Vec<Vec<Envelope>>` inboxes with a per-round sort, `BTreeMap`
//! span metrics), so every report carries its own baseline.

use awake_core::lemma10::PaletteTree;
use awake_core::{linegraph, linial};
use awake_graphs::{generators, ops, traversal, Graph, NodeId};
use awake_lab::report::{
    BenchReport, EdgeProblemsBench, PerfStats, PhaseTimesBench, ScalingRow, ThreadedScaling,
};
use awake_olocal::edge::{solve_edges_sequentially, EdgeColoring, EdgeIndex, MaximalMatching};
use awake_olocal::EdgeProblem;
use awake_sleeping::{
    threaded, Action, Config, Engine, Envelope, Outbox, Outgoing, PhaseTimes, Program, View,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counts heap allocations so the zero-allocation steady state is a
/// measured number, not a claim.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A flood program: every node broadcasts its best-known ident for `t`
/// rounds — a dense all-awake workload for engine throughput.
struct Flood {
    best: u64,
    t: u64,
}

impl Program for Flood {
    type Msg = u64;
    type Output = u64;
    fn send(&mut self, _: &View, out: &mut Outbox<u64>) {
        out.broadcast(self.best);
    }
    fn receive(&mut self, view: &View, inbox: &[Envelope<u64>]) -> Action {
        self.best = self.best.max(view.ident);
        for e in inbox {
            self.best = self.best.max(e.msg);
        }
        if view.round >= self.t {
            Action::Halt
        } else {
            Action::Stay
        }
    }
    fn output(&self) -> Option<u64> {
        Some(self.best)
    }
}

/// The same flood workload on a reconstruction of the seed engine's hot
/// path, costed per node-round exactly as the pre-optimization executor
/// was: a fresh `Vec<Outgoing>` per `send`, a `BinaryHeap` push/pop per
/// node-round (including `Stay`), per-node `Vec<Vec<Envelope>>` inboxes
/// re-sorted every round, and per-node `BTreeMap` span accounting.
mod legacy {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::{BTreeMap, BinaryHeap};

    pub struct LegacyStats {
        pub node_rounds: u64,
        pub messages: u64,
        pub delivered: u64,
        pub lost: u64,
        pub outputs: Vec<u64>,
    }

    pub fn flood(graph: &Graph, t: u64) -> LegacyStats {
        let n = graph.n();
        let mut best: Vec<u64> = vec![0; n];
        let mut halted: Vec<bool> = vec![false; n];
        let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::with_capacity(n);
        let mut next_wake: Vec<Option<u64>> = vec![Some(1); n];
        let mut node_spans: Vec<BTreeMap<&'static str, u64>> = vec![BTreeMap::new(); n];
        let mut inboxes: Vec<Vec<Envelope<u64>>> = (0..n).map(|_| Vec::new()).collect();
        let mut node_rounds = 0u64;
        let mut messages = 0u64;
        let mut delivered = 0u64;
        let mut lost = 0u64;
        for v in 0..n {
            heap.push(Reverse((1, v as u32)));
        }
        let mut awake: Vec<u32> = Vec::new();
        while let Some(&Reverse((round, _))) = heap.peek() {
            awake.clear();
            while let Some(&Reverse((r, v))) = heap.peek() {
                if r != round {
                    break;
                }
                heap.pop();
                awake.push(v);
            }
            awake.sort_unstable();
            for &v in &awake {
                node_rounds += 1;
                *node_spans[v as usize].entry("main").or_insert(0) += 1;
                // per-send allocation, exactly like the seed API
                let out: Vec<Outgoing<u64>> = vec![Outgoing::Broadcast(best[v as usize])];
                for o in out {
                    if let Outgoing::Broadcast(m) = o {
                        for &w in graph.neighbors(NodeId(v)) {
                            messages += 1;
                            if next_wake[w.index()] == Some(round) {
                                delivered += 1;
                                inboxes[w.index()].push(Envelope {
                                    from: NodeId(v),
                                    msg: m,
                                });
                            } else {
                                lost += 1;
                            }
                        }
                    }
                }
            }
            for &v in &awake {
                let mut inbox = std::mem::take(&mut inboxes[v as usize]);
                inbox.sort_by_key(|e| e.from);
                let b = &mut best[v as usize];
                *b = (*b).max(graph.ident(NodeId(v)));
                for e in &inbox {
                    *b = (*b).max(e.msg);
                }
                if round >= t {
                    halted[v as usize] = true;
                    next_wake[v as usize] = None;
                } else {
                    next_wake[v as usize] = Some(round + 1);
                    heap.push(Reverse((round + 1, v)));
                }
                inbox.clear();
                inboxes[v as usize] = inbox;
            }
        }
        assert!(halted.iter().all(|&h| h));
        black_box(&node_spans);
        LegacyStats {
            node_rounds,
            messages,
            delivered,
            lost,
            outputs: best,
        }
    }
}

const N: usize = 8192;
const DEG: usize = 8;
const ROUNDS: u64 = 150;
const ITERS: usize = 5;

fn bench_engine_flood(g: &Graph) -> (PerfStats, PerfStats) {
    let mk = || {
        (0..N)
            .map(|_| Flood { best: 0, t: ROUNDS })
            .collect::<Vec<Flood>>()
    };

    // Current engine: best-of-ITERS wall time; allocations from the last
    // timed run (programs pre-built so the measured window is the engine).
    let mut best_ns = f64::INFINITY;
    let mut allocs = 0u64;
    let mut totals = (0u64, 0u64);
    for _ in 0..ITERS {
        let progs = mk();
        let a0 = alloc_count();
        let t0 = Instant::now();
        let run = Engine::new(g, Config::default()).run(progs).unwrap();
        let ns = t0.elapsed().as_nanos() as f64;
        allocs = alloc_count() - a0;
        totals = (run.metrics.total_awake(), run.metrics.messages_sent);
        black_box(&run.outputs);
        best_ns = best_ns.min(ns);
    }
    let engine = PerfStats {
        node_rounds: totals.0,
        messages: totals.1,
        allocations: allocs,
        wall_ns: best_ns,
    };

    // Legacy reconstruction, same workload.
    let mut best_ns = f64::INFINITY;
    let mut lallocs = 0u64;
    let mut ltotals = (0u64, 0u64);
    for _ in 0..ITERS {
        let a0 = alloc_count();
        let t0 = Instant::now();
        let stats = legacy::flood(g, ROUNDS);
        let ns = t0.elapsed().as_nanos() as f64;
        lallocs = alloc_count() - a0;
        ltotals = (stats.node_rounds, stats.messages);
        black_box(&stats.outputs);
        best_ns = best_ns.min(ns);
    }
    let legacy = PerfStats {
        node_rounds: ltotals.0,
        messages: ltotals.1,
        allocations: lallocs,
        wall_ns: best_ns,
    };

    // The two must compute the same answer, or the comparison is vacuous.
    let cur = Engine::new(g, Config::default()).run(mk()).unwrap();
    let leg = legacy::flood(g, ROUNDS);
    assert_eq!(cur.outputs, leg.outputs, "baseline must agree on outputs");
    assert_eq!(cur.metrics.messages_delivered, leg.delivered);
    assert_eq!(cur.metrics.messages_lost, leg.lost);

    (engine, legacy)
}

fn bench_threaded_flood(g: &Graph) -> PerfStats {
    let mk = || {
        (0..N)
            .map(|_| Flood { best: 0, t: ROUNDS })
            .collect::<Vec<Flood>>()
    };
    let mut best_ns = f64::INFINITY;
    let mut allocs = 0u64;
    let mut totals = (0u64, 0u64);
    for _ in 0..ITERS {
        let progs = mk();
        let a0 = alloc_count();
        let t0 = Instant::now();
        let run = threaded::run_threaded(g, progs, Config::default(), 4).unwrap();
        let ns = t0.elapsed().as_nanos() as f64;
        allocs = alloc_count() - a0;
        totals = (run.metrics.total_awake(), run.metrics.messages_sent);
        black_box(&run.outputs);
        best_ns = best_ns.min(ns);
    }
    PerfStats {
        node_rounds: totals.0,
        messages: totals.1,
        allocations: allocs,
        wall_ns: best_ns,
    }
}

/// Delivery-pipeline scale for the worker sweep: a sparse `G(n, p)` at the
/// size regime the owner-sharded pipeline exists for.
const SCALE_N: usize = 65_536;
const SCALE_DEG: usize = 8;
const SCALE_ROUNDS: u64 = 25;
const SCALE_ITERS: usize = 3;

/// The dense flood workload at n = 65 536 on the serial engine and the
/// worker-pool executor at 1/2/4/8 workers — the `threaded_scaling`
/// section of `BENCH_engine.json` — plus the per-phase wall-time
/// attribution of the 4-worker pipeline (the `phase_times` section).
fn bench_threaded_scaling() -> (ThreadedScaling, PhaseTimesBench) {
    let p = SCALE_DEG as f64 / (SCALE_N - 1) as f64;
    let g = generators::gnp_sparse(SCALE_N, p, 7);
    let mk = || {
        (0..SCALE_N)
            .map(|_| Flood {
                best: 0,
                t: SCALE_ROUNDS,
            })
            .collect::<Vec<Flood>>()
    };
    let measure = |runner: &dyn Fn(Vec<Flood>) -> awake_sleeping::Run<u64>| -> PerfStats {
        let mut best_ns = f64::INFINITY;
        let mut allocs = 0u64;
        let mut totals = (0u64, 0u64);
        for _ in 0..SCALE_ITERS {
            let progs = mk();
            let a0 = alloc_count();
            let t0 = Instant::now();
            let run = runner(progs);
            let ns = t0.elapsed().as_nanos() as f64;
            allocs = alloc_count() - a0;
            totals = (run.metrics.total_awake(), run.metrics.messages_sent);
            black_box(&run.outputs);
            best_ns = best_ns.min(ns);
        }
        PerfStats {
            node_rounds: totals.0,
            messages: totals.1,
            allocations: allocs,
            wall_ns: best_ns,
        }
    };

    let serial = measure(&|progs| Engine::new(&g, Config::default()).run(progs).unwrap());
    let rows: Vec<ScalingRow> = [1usize, 2, 4, 8]
        .into_iter()
        .map(|workers| ScalingRow {
            workers,
            stats: measure(&|progs| {
                threaded::run_threaded(&g, progs, Config::default(), workers).unwrap()
            }),
        })
        .collect();

    // Per-phase attribution of the 4-worker pipeline, accumulated over
    // the same number of iterations. The probe reads the clock only on
    // the coordinator between stages, so the timed run is bit-for-bit the
    // plain threaded run — asserted below along with the serial engine.
    let mut phases = PhaseTimes::default();
    let mut timed = None;
    for _ in 0..SCALE_ITERS {
        timed = Some(
            threaded::run_threaded_timed(&g, mk(), Config::default(), 4, &mut phases).unwrap(),
        );
    }
    let timed = timed.expect("SCALE_ITERS > 0");

    // The sweep is only meaningful if the pipeline computes the serial
    // answer — assert full bit-for-bit agreement once at this scale.
    let s = Engine::new(&g, Config::default()).run(mk()).unwrap();
    let t = threaded::run_threaded(&g, mk(), Config::default(), 4).unwrap();
    assert_eq!(s.outputs, t.outputs, "scaling bench executors must agree");
    assert_eq!(s.metrics, t.metrics, "scaling bench metrics must agree");
    assert_eq!(s.outputs, timed.outputs, "timed executor must agree");
    assert_eq!(
        s.metrics, timed.metrics,
        "timed executor metrics must agree"
    );

    (
        ThreadedScaling {
            n: SCALE_N,
            degree: SCALE_DEG,
            rounds: SCALE_ROUNDS,
            serial,
            rows,
        },
        PhaseTimesBench::from_phase_times(4, &phases),
    )
}

/// Edge-problem workload: a near-regular host graph at a size where the
/// line-graph adapter simulates ~`EDGE_N * EDGE_DEG / 2` virtual nodes.
const EDGE_N: usize = 2048;
const EDGE_DEG: usize = 8;
const EDGE_ITERS: usize = 3;

/// The `edge_problems` section: maximal matching and (2Δ−1)-edge coloring
/// through the line-graph virtualization adapter on the serial engine.
///
/// The counted window is the engine run only — host construction is
/// one-time setup, excluded so `allocations` reports the adapter's
/// *steady-state* rate (the number `tests/alloc_regression.rs` pins at
/// ≤ 0.1 allocs/node-round; the whole-solve rate was 3.7–3.9 before the
/// shared-`Arc` + pooled-scratch rework).
fn bench_edge_problems() -> EdgeProblemsBench {
    let g = generators::random_regular(EDGE_N, EDGE_DEG, 2);
    let idx = EdgeIndex::new(&g);
    let inputs = vec![(); idx.m()];

    fn measure<P>(
        g: &Graph,
        idx: &EdgeIndex,
        problem: &P,
        inputs: &[P::Input],
    ) -> (PerfStats, Vec<P::Output>)
    where
        P: EdgeProblem + Clone,
    {
        let mut best_ns = f64::INFINITY;
        let mut allocs = 0u64;
        let mut totals = (0u64, 0u64);
        let mut outputs = Vec::new();
        for _ in 0..EDGE_ITERS {
            let programs = linegraph::greedy_hosts(g, idx, problem, inputs);
            let a0 = alloc_count();
            let t0 = Instant::now();
            let run = Engine::new(g, Config::default()).run(programs).unwrap();
            let ns = t0.elapsed().as_nanos() as f64;
            allocs = alloc_count() - a0;
            totals = (run.metrics.total_awake(), run.metrics.messages_sent);
            black_box(&run.outputs);
            // Flatten per-node owned outputs back to canonical edge order
            // (what `linegraph::solve_edges` does), outside the window.
            let mut flat: Vec<Option<P::Output>> = vec![None; idx.m()];
            for owned in &run.outputs {
                for (label, out) in owned {
                    flat[idx.index_of_label(*label)] = Some(out.clone());
                }
            }
            outputs = flat
                .into_iter()
                .map(|o| o.expect("every edge has exactly one owner"))
                .collect();
            best_ns = best_ns.min(ns);
        }
        (
            PerfStats {
                node_rounds: totals.0,
                messages: totals.1,
                allocations: allocs,
                wall_ns: best_ns,
            },
            outputs,
        )
    }

    let (matching, matched) = measure(&g, &idx, &MaximalMatching, &inputs);
    let (edge_coloring, colors) = measure(&g, &idx, &EdgeColoring, &inputs);

    // The numbers are only meaningful if the adapter computes the
    // sequential greedy's answer and the validators accept it — the runs
    // are deterministic, so the measured outputs are any run's outputs.
    assert_eq!(
        matched,
        solve_edges_sequentially(&MaximalMatching, &g, &idx, &inputs),
        "adapter must match the sequential reference"
    );
    MaximalMatching.validate(&g, &inputs, &matched).unwrap();
    EdgeColoring.validate(&g, &inputs, &colors).unwrap();

    EdgeProblemsBench {
        n: g.n(),
        m: idx.m(),
        matching,
        edge_coloring,
    }
}

fn bench_lemma10() {
    let t = PaletteTree::new(1 << 12);
    let t0 = Instant::now();
    let mut acc = 0u64;
    for _ in 0..50 {
        for color in 1..=4096u64 {
            acc += t.r(black_box(color)).len() as u64;
        }
    }
    println!(
        "lemma10/r-path-4096          {:>12.1} ns/call (acc {acc})",
        t0.elapsed().as_nanos() as f64 / (50.0 * 4096.0)
    );
}

fn bench_linial() {
    let step = linial::step_params(1 << 20, 16);
    let neighbors: Vec<u64> = (0..16).map(|i| i * 991 + 7).collect();
    let t0 = Instant::now();
    let mut acc = 0u64;
    for i in 0..100_000 {
        acc += linial::reduce_color(black_box(123_456 + i % 7), &neighbors, step);
    }
    println!(
        "linial/reduce-color          {:>12.1} ns/call (acc {acc})",
        t0.elapsed().as_nanos() as f64 / 1e5
    );
    let t0 = Instant::now();
    let mut len = 0usize;
    for _ in 0..100 {
        len = linial::schedule(black_box(1u64 << 40), 16).len();
    }
    println!(
        "linial/schedule-from-2^40    {:>12.1} ns/call (len {len})",
        t0.elapsed().as_nanos() as f64 / 100.0
    );
}

fn bench_graphs() {
    let g = generators::gnp(512, 0.05, 3);
    let t0 = Instant::now();
    let mut m = 0usize;
    for _ in 0..20 {
        m = ops::square(black_box(&g)).m();
    }
    println!(
        "graphs/square-512            {:>12.1} µs/call (m {m})",
        t0.elapsed().as_nanos() as f64 / 20.0 / 1e3
    );
    let t0 = Instant::now();
    let mut d = 0usize;
    for _ in 0..200 {
        d = traversal::bfs_distances(black_box(&g), NodeId(0)).len();
    }
    println!(
        "graphs/bfs-512               {:>12.1} µs/call (n {d})",
        t0.elapsed().as_nanos() as f64 / 200.0 / 1e3
    );
}

fn main() {
    let g = generators::random_regular(N, DEG, 1);
    println!("engine/flood: n = {N}, degree ≈ {DEG}, {ROUNDS} rounds, best of {ITERS}\n");

    let (engine, legacy) = bench_engine_flood(&g);
    let thr = bench_threaded_flood(&g);
    let (scaling, phase_times) = bench_threaded_scaling();
    let edge_problems = bench_edge_problems();
    let report = BenchReport {
        bench: "engine/flood".into(),
        n: N,
        degree: DEG,
        rounds: ROUNDS,
        cores: std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(0),
        engine,
        threaded_4_workers: thr,
        legacy_baseline: legacy,
        threaded_scaling: scaling,
        phase_times,
        edge_problems,
    };
    println!(
        "engine  (serial)   {:>9.1} ns/node-round  {:>12.0} node-rounds/s  {:>7} allocs ({:.4}/node-round)",
        engine.ns_per_node_round(),
        engine.node_rounds_per_sec(),
        engine.allocations,
        engine.allocations_per_node_round()
    );
    println!(
        "engine  (4 workers){:>9.1} ns/node-round  {:>12.0} node-rounds/s  {:>7} allocs",
        thr.ns_per_node_round(),
        thr.node_rounds_per_sec(),
        thr.allocations
    );
    println!(
        "legacy  baseline   {:>9.1} ns/node-round  {:>12.0} node-rounds/s  {:>7} allocs ({:.4}/node-round)",
        legacy.ns_per_node_round(),
        legacy.node_rounds_per_sec(),
        legacy.allocations,
        legacy.allocations_per_node_round()
    );
    println!(
        "speedup (serial vs legacy baseline): {:.2}x\n",
        report.speedup_vs_legacy()
    );

    let sc = &report.threaded_scaling;
    println!(
        "threaded_scaling: n = {}, degree ≈ {}, {} rounds, best of {SCALE_ITERS}",
        sc.n, sc.degree, sc.rounds
    );
    println!(
        "  serial           {:>9.1} ns/node-round  {:>12.0} node-rounds/s",
        sc.serial.ns_per_node_round(),
        sc.serial.node_rounds_per_sec()
    );
    for row in &sc.rows {
        println!(
            "  {} workers        {:>9.1} ns/node-round  {:>12.0} node-rounds/s  ({:.4} allocs/node-round)",
            row.workers,
            row.stats.ns_per_node_round(),
            row.stats.node_rounds_per_sec(),
            row.stats.allocations_per_node_round()
        );
    }
    if let Some(r) = sc.w4_vs_serial() {
        println!("  4-worker pipeline vs serial: {r:.2}x\n");
    }

    let pt = &report.phase_times;
    println!(
        "phase_times ({} workers, {} dispatched + {} inline rounds/run-set):",
        pt.workers, pt.dispatched_rounds, pt.inline_rounds
    );
    println!(
        "  partition {:>10.0} ns/round   route {:>10.0}   deliver {:>10.0}   merge {:>10.0}   inline {:>10.0}\n",
        pt.partition_ns_per_round,
        pt.route_ns_per_round,
        pt.deliver_ns_per_round,
        pt.merge_ns_per_round,
        pt.inline_ns_per_round
    );

    let ep = &report.edge_problems;
    println!(
        "edge_problems (line-graph adapter): n = {}, m = {}, best of {EDGE_ITERS}",
        ep.n, ep.m
    );
    println!(
        "  matching         {:>9.1} ns/node-round  {:>12.0} node-rounds/s  ({:.4} allocs/node-round)",
        ep.matching.ns_per_node_round(),
        ep.matching.node_rounds_per_sec(),
        ep.matching.allocations_per_node_round()
    );
    println!(
        "  edge coloring    {:>9.1} ns/node-round  {:>12.0} node-rounds/s  ({:.4} allocs/node-round)\n",
        ep.edge_coloring.ns_per_node_round(),
        ep.edge_coloring.node_rounds_per_sec(),
        ep.edge_coloring.allocations_per_node_round()
    );

    // cargo runs benches with CWD = the package dir; anchor the report at
    // the workspace root so its path is stable across invocation styles.
    // Atomic write: a killed bench must not leave a torn JSON document
    // under the name baseline-diff reads.
    let out = std::env::var("BENCH_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json").into());
    awake_lab::fsio::write_atomic(std::path::Path::new(&out), report.to_json().as_bytes())
        .expect("write bench report");
    println!("wrote {out}");

    bench_lemma10();
    bench_linial();
    bench_graphs();
}
