//! E2 — §1.1: the Δ-sweep at fixed `n`. BM21's awake complexity grows as
//! `2·log₂ Δ + O(log* n)`; Theorem 1's does not depend on Δ at all.
//!
//! The paper's improvement kicks in when `Δ ≫ 2^{√log n}`; at feasible
//! scales the measured curves show the *slopes* (BM21 up, Theorem 1 flat).

use awake_bench::{header, run_trivial};
use awake_core::{bm21, theorem1};
use awake_graphs::generators;
use awake_olocal::problems::MaximalIndependentSet;

fn main() {
    println!("E2: awake vs Δ at fixed n = 512 (MIS)");
    header("      Δ | trivial |  bm21 | thm1 | thm1/bm21");
    let n = 512usize;
    let p = MaximalIndependentSet;
    for delta in [4usize, 8, 16, 32, 64, 128, 256] {
        let g = generators::random_with_max_degree(n, delta, 1000 + delta as u64);
        let t = run_trivial(&g, &p).max_awake();
        let b = bm21::solve(&g, &p, &vec![(); n], None)
            .unwrap()
            .composition
            .max_awake();
        let r = theorem1::solve(&g, &p, Default::default()).unwrap();
        let a = r.composition.max_awake();
        println!(
            "{:>7} | {:>7} | {:>5} | {:>4} | {:>9.2}",
            g.max_degree(),
            t,
            b,
            a,
            a as f64 / b as f64
        );
    }
    println!(
        "\nshape check: Theorem 1's column is constant in Δ (its schedule never\n\
         consults Δ); BM21 climbs with 2·log₂ Δ; the trivial baseline climbs with Δ."
    );
}
