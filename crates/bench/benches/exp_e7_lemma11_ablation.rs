//! E7 — ablation: Lemma 11's binary-tree wake schedule (awake
//! `2 + log₂ q`) versus the naive per-color schedule.
//!
//! The naive alternative wakes a node once per smaller color in its
//! neighborhood plus once to decide — on a clique with distinct colors
//! that is `Θ(k)` awake rounds. Lemma 10's palette tree is what turns
//! that into `O(log k)`.

use awake_bench::header;
use awake_core::lemma10::PaletteTree;
use awake_core::lemma11::ColorScheduled;
use awake_graphs::{coloring, generators};
use awake_olocal::problems::DeltaPlusOneColoring;
use awake_sleeping::{Config, Engine};

fn main() {
    println!("E7: Lemma 11 wake-schedule ablation (cliques, k distinct colors)");
    header("   k |  q | lemma11 awake | exact 2+log2(q) | naive awake Θ(k)");
    for k in [8usize, 16, 32, 64, 128] {
        let g = generators::complete(k);
        let colors: Vec<u64> = (1..=k as u64).collect();
        let programs: Vec<ColorScheduled<DeltaPlusOneColoring>> = g
            .nodes()
            .map(|v| ColorScheduled::new(DeltaPlusOneColoring, (), colors[v.index()], k as u64))
            .collect();
        let run = Engine::new(&g, Config::default()).run(programs).unwrap();
        coloring::check_proper(&g, &run.outputs).unwrap();
        let q = PaletteTree::covering(k as u64).q();
        // naive: the node of highest color hears every smaller color.
        let naive = k as u64 + 1;
        println!(
            "{:>4} | {:>2} | {:>13} | {:>15} | {:>16}",
            k,
            q,
            run.metrics.max_awake(),
            2 + q.trailing_zeros(),
            naive
        );
    }
    println!("\nLemma 10's palette tree: exponential awake savings over per-color waking.");
}
