//! E4 — Theorem 9: given a colored BFS-clustering with `c` colors, awake
//! complexity is `O(log c)` and rounds are `O(c·n)`.
//!
//! Sweeps `c` via synthetic Voronoi clusterings on a fixed graph.

use awake_bench::header;
use awake_core::{bounds, clustering, theorem9};
use awake_graphs::generators;
use awake_olocal::problems::DeltaPlusOneColoring;

fn main() {
    println!("E4: Theorem 9 awake vs color count c (fixed 20x20 grid)");
    header(" clusters |    c | awake | awake bound | rounds");
    let g = generators::grid(20, 20);
    let p = DeltaPlusOneColoring;
    for clusters in [2usize, 4, 8, 16, 32, 64, 128, 256] {
        let cl = clustering::synthesize(&g, clusters, 5);
        let c = cl.max_label();
        let r = theorem9::solve(&g, &p, &vec![(); g.n()], &cl, c).unwrap();
        println!(
            "{:>9} | {:>4} | {:>5} | {:>11} | {:>6}",
            clusters,
            c,
            r.composition.max_awake(),
            bounds::theorem9_awake(c),
            r.composition.rounds()
        );
    }
    println!(
        "\n(grid cluster graphs are near-planar, so greedy coloring caps c at ~5;\n\
         the clique sweep below forces c = cluster count)"
    );
    println!("\nE4b: same sweep on K_120 — every pair of clusters is adjacent, c = #clusters");
    header(" clusters |    c | awake | awake bound | rounds");
    let g = generators::complete(120);
    for clusters in [2usize, 4, 8, 16, 32, 64] {
        let cl = clustering::synthesize(&g, clusters, 9);
        let c = cl.max_label();
        let r = theorem9::solve(&g, &p, &vec![(); g.n()], &cl, c).unwrap();
        println!(
            "{:>9} | {:>4} | {:>5} | {:>11} | {:>6}",
            clusters,
            c,
            r.composition.max_awake(),
            bounds::theorem9_awake(c),
            r.composition.rounds()
        );
    }
    println!(
        "\nshape check: c grows 32x (2 → 64) while awake grows by an additive\n\
         5·log₂ term only (Theorem 9: awake O(log c)); rounds grow with c·n."
    );
}
