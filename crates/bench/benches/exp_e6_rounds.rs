//! E6 — round complexity and the Lemma 7 overhead.
//!
//! With identifiers from `{1..n}` the paper's Remark gives round
//! complexity `O(n²·2^{√log n})`; this experiment measures the end-to-end
//! round count against that envelope.

use awake_bench::header;
use awake_core::{params::Params, theorem13};
use awake_graphs::generators;

fn main() {
    println!("E6: Theorem 13 round complexity vs the n²·2^(√log n)-style envelope");
    header("      n |      rounds |    envelope | ratio | max awake");
    for exp in [6u32, 7, 8, 9, 10] {
        let n = 1usize << exp;
        let g = generators::random_with_max_degree(n, 8, 5 + exp as u64);
        let params = Params::for_graph(&g);
        let res = theorem13::compute(&g, &params).unwrap();
        let envelope = (n as f64) * (n as f64) * (params.b as f64) * params.iterations as f64;
        let rounds = res.composition.rounds() as f64;
        println!(
            "{:>7} | {:>11} | {:>11.3e} | {:>5.3} | {:>9}",
            n,
            res.composition.rounds(),
            envelope,
            rounds / envelope,
            res.composition.max_awake()
        );
    }
    println!(
        "\nshape check: the measured-rounds / envelope ratio stays bounded\n\
         (the paper's polynomial round complexity, Remark after Theorem 13)."
    );
}
