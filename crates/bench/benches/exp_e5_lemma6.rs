//! E5 — Lemma 6: broadcast and convergecast on labeled trees have awake
//! complexity exactly 3 (2 at the root) and round complexity `O(N)`.

use awake_bench::header;
use awake_core::lemma6::{Broadcast, Convergecast, TreeInput};
use awake_graphs::{generators, traversal, Graph, NodeId};
use awake_sleeping::{Config, Engine};

fn inputs_for(g: &Graph) -> Vec<TreeInput> {
    let dist = traversal::bfs_distances(g, NodeId(0));
    (0..g.n())
        .map(|v| TreeInput {
            parent: if v == 0 {
                None
            } else {
                let dv = dist[v].unwrap();
                g.neighbors(NodeId(v as u32))
                    .iter()
                    .copied()
                    .find(|u| dist[u.index()] == Some(dv - 1))
            },
            label: dist[v].unwrap() as u64 + 1,
            label_bound: g.n() as u64 + 1,
        })
        .collect()
}

fn main() {
    println!("E5: Lemma 6 broadcast/convergecast (awake must be exactly 3)");
    header("      n | bc max awake | bc rounds | cc max awake | cc rounds | bound O(N)");
    for n in [16usize, 64, 256, 1024, 4096] {
        let g = generators::random_tree(n, 9);
        let inputs = inputs_for(&g);
        let bc: Vec<Broadcast<u64>> = inputs
            .iter()
            .map(|i| Broadcast::new(i.clone(), i.parent.is_none().then_some(7)))
            .collect();
        let bc_run = Engine::new(&g, Config::default()).run(bc).unwrap();
        let cc: Vec<Convergecast<u64>> = inputs
            .iter()
            .enumerate()
            .map(|(v, i)| Convergecast::new(i.clone(), v as u64))
            .collect();
        let cc_run = Engine::new(&g, Config::default()).run(cc).unwrap();
        assert!(bc_run.outputs.iter().all(|&m| m == 7));
        assert_eq!(cc_run.outputs[0].len(), n);
        println!(
            "{:>7} | {:>12} | {:>9} | {:>12} | {:>9} | {:>10}",
            n,
            bc_run.metrics.max_awake(),
            bc_run.metrics.rounds,
            cc_run.metrics.max_awake(),
            cc_run.metrics.rounds,
            n + 4
        );
    }
    println!("\npaper: awake complexity 3, round complexity O(N). Both exact.");
}
