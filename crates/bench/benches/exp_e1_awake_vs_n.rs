//! E1 — Theorem 1: awake complexity as a function of `n` at `Δ ≈ √n`
//! (the regime where `Δ ≫ 2^{√log n}` asymptotically).
//!
//! Paper claim: trivial `O(Δ) = O(√n)`, BM21 `O(log Δ + log* n) = Θ(log n)`,
//! Theorem 1 `O(√log n · log* n)` — the new algorithm's curve must be the
//! flattest in `n` (constants put its absolute value above BM21 at laptop
//! scale; the *growth rates* are the claim).

use awake_bench::{header, run_trivial};
use awake_core::{bm21, bounds, theorem1};
use awake_graphs::generators;
use awake_olocal::problems::DeltaPlusOneColoring;

fn main() {
    println!("E1: awake vs n at Δ ≈ √n ((Δ+1)-coloring)");
    header("       n      Δ | trivial |  bm21 | thm1  | thm1 bound | thm1 rounds");
    let p = DeltaPlusOneColoring;
    for exp in [6u32, 7, 8, 9, 10] {
        let n = 1usize << exp;
        let delta = (n as f64).sqrt() as usize;
        let g = generators::random_with_max_degree(n, delta, 42 + exp as u64);
        let t = run_trivial(&g, &p).max_awake();
        let b = bm21::solve(&g, &p, &vec![(); n], None)
            .unwrap()
            .composition
            .max_awake();
        let r = theorem1::solve(&g, &p, Default::default()).unwrap();
        println!(
            "{:>8} {:>6} | {:>7} | {:>5} | {:>5} | {:>10} | {:>11}",
            n,
            g.max_degree(),
            t,
            b,
            r.composition.max_awake(),
            bounds::theorem1_awake(&r.params),
            r.composition.rounds(),
        );
    }
    println!(
        "\nshape check: trivial grows ~√n, bm21 grows ~log n, thm1 is near-flat\n\
         (√log n · log* n changes by < 2x while n grows 16x)."
    );
}
