//! E3 — Theorem 13 + Lemma 15: colors stay within `k·a·b² = 2^{O(√log n)}`,
//! awake stays within the `O(√log n · log* n)` budget, and every iteration
//! shrinks the surviving cluster count by at least the factor `b`.

use awake_bench::header;
use awake_core::{bounds, params::Params, theorem13};
use awake_graphs::generators;

fn main() {
    println!("E3: Theorem 13 clustering quality");
    header("      n |  b | iters | colors used | color bound | awake | awake bound | worst shrink");
    for exp in [6u32, 7, 8, 9, 10] {
        let n = 1usize << exp;
        let g = generators::gnp(n, (8.0 / n as f64).min(0.5), 77 + exp as u64);
        let params = Params::for_graph(&g);
        let res = theorem13::compute(&g, &params).unwrap();
        res.clustering
            .validate_colored(&g)
            .expect("valid clustering");
        let worst_shrink = res
            .iteration_stats
            .iter()
            .filter(|s| s.clusters_after > 0)
            .map(|s| s.clusters_before as f64 / s.clusters_after as f64)
            .fold(f64::INFINITY, f64::min);
        println!(
            "{:>7} | {:>2} | {:>5} | {:>11} | {:>11} | {:>5} | {:>11} | {:>12}",
            n,
            params.b,
            res.iteration_stats.len(),
            res.clustering.labels().len(),
            params.color_bound(),
            res.composition.max_awake(),
            bounds::theorem13_awake(&params),
            if worst_shrink.is_finite() {
                format!("{worst_shrink:.1}x (≥{})", params.b)
            } else {
                "all in iter 1".into()
            }
        );
    }
    println!("\nLemma 15 guarantee: every shrink factor ≥ b; colors ≤ k·a·b².");
}
