//! The O-LOCAL problem trait.

use awake_graphs::{Graph, NodeId};
use std::collections::BTreeMap;
use std::fmt;

/// What the greedy step sees when deciding node `v`'s output: `v` itself,
/// its per-node input, and the outputs of its *descendant closure*
/// `Gµ(v) ∖ {v}` (every node reachable from `v` along outgoing edges).
///
/// The out-neighbor accessors are the common case ((Δ+1)-coloring, MIS,
/// etc. only look one hop down); `closure_outputs` exposes the full closure
/// for problems that need it — the class definition permits both.
#[derive(Debug)]
pub struct GreedyView<'a, I, O> {
    /// This node's identifier (the LOCAL model's notion of identity —
    /// distributed solvers never see engine addresses of distant nodes).
    pub ident: u64,
    /// This node's degree in `G`.
    pub degree: usize,
    /// This node's problem input.
    pub input: &'a I,
    /// `(out-neighbor identifier, its output)` per direct out-neighbor.
    pub out_neighbors: &'a [(u64, O)],
    /// Outputs of the entire descendant closure (keyed by identifier),
    /// including the direct out-neighbors. May contain *more* than the
    /// closure when a distributed solver over-shares; the greedy function
    /// must only rely on the guaranteed part.
    pub closure_outputs: &'a BTreeMap<u64, O>,
}

/// A constraint violation found by a validator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Human-readable description of what failed.
    pub reason: String,
    /// The nodes involved.
    pub nodes: Vec<NodeId>,
}

impl Violation {
    /// Construct a violation.
    pub fn new(reason: impl Into<String>, nodes: Vec<NodeId>) -> Self {
        Violation {
            reason: reason.into(),
            nodes,
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (nodes {:?})", self.reason, self.nodes)
    }
}

impl std::error::Error for Violation {}

/// A problem in the O-LOCAL class.
///
/// Implementations must guarantee: for **every** graph `G`, **every**
/// acyclic orientation `µ`, and every processing order respecting `µ`,
/// applying [`decide`](OLocalProblem::decide) node by node yields outputs
/// accepted by [`validate`](OLocalProblem::validate). This is exactly
/// membership in O-LOCAL, and is what the distributed algorithms in
/// `awake-core` rely on. Property tests in this crate exercise the
/// guarantee over random graphs and orientations.
pub trait OLocalProblem {
    /// Per-node input (e.g. the color lists of list-coloring). Use `()`
    /// for input-free problems.
    type Input: Clone + fmt::Debug + Send + Sync;
    /// Per-node output labeling.
    type Output: Clone + fmt::Debug + PartialEq + Send + Sync;

    /// A short name for reports.
    fn name(&self) -> &'static str;

    /// The greedy step: compute `v`'s output from its descendants' outputs.
    fn decide(&self, view: &GreedyView<'_, Self::Input, Self::Output>) -> Self::Output;

    /// Check a complete labeling.
    ///
    /// # Errors
    /// Returns the first violated constraint.
    fn validate(
        &self,
        graph: &Graph,
        inputs: &[Self::Input],
        outputs: &[Self::Output],
    ) -> Result<(), Violation>;

    /// Whether the distributed solvers must forward full descendant
    /// closures (`true`) or only direct out-neighbor outputs (`false`,
    /// the default — correct for all problems bundled here).
    fn needs_full_closure(&self) -> bool {
        false
    }

    /// Construct default inputs for a graph (for input-free problems).
    fn trivial_inputs(&self, graph: &Graph) -> Vec<Self::Input>;
}
