//! The **O-LOCAL** class of graph problems (Barenboim–Maimon, DISC 2021;
//! §2.2 of the PODC 2025 paper this workspace reproduces).
//!
//! A labeling problem Π is in O-LOCAL if it can be solved by the following
//! restricted sequential greedy process **for every acyclic orientation**
//! `µ` of the input graph's edges: nodes are processed in any order that
//! respects `µ` (a node only after all nodes reachable from it along
//! outgoing edges), and the output of a node must be computable from the
//! outputs previously fixed for exactly those reachable nodes (its
//! *descendant closure* `Gµ(v) ∖ {v}`).
//!
//! O-LOCAL contains (Δ+1)-vertex-coloring, maximal independent set,
//! degree+1-list-coloring, and minimal vertex cover — all implemented here —
//! plus the **edge problems** maximal matching and (2Δ−1)-edge-coloring
//! (vertex problems on the line graph; see [`edge`]), but **not**
//! distance-2 coloring (see [`not_olocal`] for the executable
//! counterexample from the paper).
//!
//! ```
//! use awake_graphs::{generators, AcyclicOrientation};
//! use awake_olocal::{greedy, problems::DeltaPlusOneColoring, OLocalProblem};
//!
//! let g = generators::gnp(30, 0.2, 42);
//! let problem = DeltaPlusOneColoring;
//! let mu = AcyclicOrientation::random(&g, 7);
//! let inputs = problem.trivial_inputs(&g);
//! let outputs = greedy::solve_sequentially(&problem, &g, &mu, &inputs);
//! problem.validate(&g, &inputs, &outputs).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod edge;
pub mod greedy;
pub mod not_olocal;
mod problem;
pub mod problems;

pub use edge::{EdgeGreedyView, EdgeIndex, EdgeProblem};
pub use problem::{GreedyView, OLocalProblem, Violation};
