//! **Edge problems** of the O-LOCAL class, solved greedily on the line
//! graph `L(G)`.
//!
//! The class definition (§2.2 of the paper) is stated for labeling
//! problems and explicitly covers *edge* labelings: maximal matching and
//! `(2Δ−1)`-edge coloring are sequential greedy problems over the edges of
//! `G`, i.e. vertex problems on the line graph `L(G)` — maximal matching
//! is MIS on `L(G)`, and `(2Δ−1)`-edge coloring is degree+1(-list)
//! coloring on `L(G)` (an edge `e = {u, v}` has
//! `deg_L(e) = deg(u) + deg(v) − 2 ≤ 2Δ − 2` line-graph neighbors, so the
//! first-free color fits the `2Δ − 1` palette).
//!
//! This module provides:
//!
//! * [`EdgeProblem`] — the edge counterpart of
//!   [`OLocalProblem`](crate::OLocalProblem), with [`EdgeGreedyView`] as
//!   the greedy step's view;
//! * [`EdgeIndex`] — the canonical edge enumeration shared by validators,
//!   the sequential reference, and the distributed line-graph adapter in
//!   `awake-core`: edges are indexed in [`Graph::edges`] order and carry
//!   **labels** `1..=m` ranked by the identifier pair
//!   `(min ident, max ident)`, so labels are a pure function of the
//!   LOCAL-model identifiers (never of engine addresses);
//! * [`MaximalMatching`] and [`EdgeColoring`] with full validators;
//! * [`solve_edges_sequentially`] / [`solve_edges_in_order`] — the
//!   class-defining sequential greedy over edges, the ground truth the
//!   distributed adapter is validated against.

use crate::problem::Violation;
use awake_graphs::{Graph, NodeId};
use std::fmt;

/// What the greedy step sees when deciding edge `e`'s output.
#[derive(Debug)]
pub struct EdgeGreedyView<'a, I, O> {
    /// The edge's label (its rank in the `(min ident, max ident)` order,
    /// `1..=m` — the line-graph analogue of a node identifier).
    pub label: u64,
    /// Identifiers of the edge's endpoints, `(smaller, larger)`.
    pub endpoints: (u64, u64),
    /// The edge's degree in the line graph: `deg(u) + deg(v) − 2`.
    pub line_degree: usize,
    /// This edge's problem input.
    pub input: &'a I,
    /// `(label, output)` of every *adjacent* edge decided before this one,
    /// ascending by label.
    pub out_neighbors: &'a [(u64, O)],
}

/// An edge problem in the O-LOCAL class (over the line graph).
///
/// Implementations must guarantee: for **every** graph `G` and **every**
/// processing order of the edges, deciding edges one by one via
/// [`decide`](EdgeProblem::decide) — each edge seeing exactly the
/// already-decided adjacent edges — yields outputs accepted by
/// [`validate`](EdgeProblem::validate). This is O-LOCAL membership of the
/// corresponding vertex problem on `L(G)` (processing orders are the
/// acyclic orientations a distributed solver induces). Property tests in
/// this module exercise the guarantee over random orders.
pub trait EdgeProblem {
    /// Per-edge input. Use `()` for input-free problems.
    type Input: Clone + fmt::Debug + Send + Sync;
    /// Per-edge output labeling.
    type Output: Clone + fmt::Debug + PartialEq + Send + Sync;

    /// A short name for reports.
    fn name(&self) -> &'static str;

    /// The greedy step: compute `e`'s output from its decided neighbors.
    fn decide(&self, view: &EdgeGreedyView<'_, Self::Input, Self::Output>) -> Self::Output;

    /// Check a complete labeling (indexed in [`EdgeIndex`] canonical
    /// order, i.e. [`Graph::edges`] order).
    ///
    /// # Errors
    /// Returns the first violated constraint.
    fn validate(
        &self,
        graph: &Graph,
        inputs: &[Self::Input],
        outputs: &[Self::Output],
    ) -> Result<(), Violation>;

    /// Construct default inputs for a graph (for input-free problems).
    fn trivial_inputs(&self, graph: &Graph) -> Vec<Self::Input>;
}

/// The canonical edge enumeration of a graph, shared by everything that
/// talks about edges: index `i` is the `i`-th edge of [`Graph::edges`]
/// (ascending `(u, v)` with `u < v` by position), and label
/// `self.label(i)` is the 1-based rank of the edge under the
/// lexicographic order of its identifier pair `(min ident, max ident)`.
///
/// Labels — not indices — are what distributed edge algorithms schedule
/// by, because they derive from the LOCAL model's identifiers alone.
/// The **owner** of an edge is its higher-identifier endpoint: the node
/// that reports the edge's output for the distributed adapter.
#[derive(Debug, Clone)]
pub struct EdgeIndex {
    edges: Vec<(NodeId, NodeId)>,
    labels: Vec<u64>,
    /// Canonical index by label (labels are 1-based): `by_label[l-1]`.
    by_label: Vec<u32>,
    /// Incident canonical edge indices per node, ascending.
    incident: Vec<Vec<u32>>,
}

impl EdgeIndex {
    /// Enumerate and label the edges of `g`.
    pub fn new(g: &Graph) -> Self {
        let edges: Vec<(NodeId, NodeId)> = g.edges().collect();
        let mut order: Vec<u32> = (0..edges.len() as u32).collect();
        order.sort_by_key(|&i| {
            let (u, v) = edges[i as usize];
            ident_pair(g, u, v)
        });
        let mut labels = vec![0u64; edges.len()];
        let mut by_label = vec![0u32; edges.len()];
        for (rank, &i) in order.iter().enumerate() {
            labels[i as usize] = rank as u64 + 1;
            by_label[rank] = i;
        }
        let mut incident: Vec<Vec<u32>> = vec![Vec::new(); g.n()];
        for (i, &(u, v)) in edges.iter().enumerate() {
            incident[u.index()].push(i as u32);
            incident[v.index()].push(i as u32);
        }
        EdgeIndex {
            edges,
            labels,
            by_label,
            incident,
        }
    }

    /// Number of edges.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// The canonical edge list ([`Graph::edges`] order).
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// The label of canonical edge `i`.
    pub fn label(&self, i: usize) -> u64 {
        self.labels[i]
    }

    /// The canonical index of the edge labeled `l` (`1..=m`).
    pub fn index_of_label(&self, l: u64) -> usize {
        self.by_label[(l - 1) as usize] as usize
    }

    /// Canonical indices of the edges incident to `v`, ascending.
    pub fn incident(&self, v: NodeId) -> &[u32] {
        &self.incident[v.index()]
    }

    /// Identifiers of edge `i`'s endpoints, `(smaller, larger)`.
    pub fn endpoint_idents(&self, g: &Graph, i: usize) -> (u64, u64) {
        let (u, v) = self.edges[i];
        ident_pair(g, u, v)
    }

    /// The owner of edge `i`: its higher-identifier endpoint.
    pub fn owner(&self, g: &Graph, i: usize) -> NodeId {
        let (u, v) = self.edges[i];
        if g.ident(u) > g.ident(v) {
            u
        } else {
            v
        }
    }

    /// Degree of edge `i` in the line graph: `deg(u) + deg(v) − 2`.
    pub fn line_degree(&self, g: &Graph, i: usize) -> usize {
        let (u, v) = self.edges[i];
        g.degree(u) + g.degree(v) - 2
    }

    /// Sorted labels of the edges adjacent to edge `i` in the line graph.
    pub fn adjacent_labels(&self, i: usize) -> Vec<u64> {
        let (u, v) = self.edges[i];
        let mut out: Vec<u64> = self.incident[u.index()]
            .iter()
            .chain(&self.incident[v.index()])
            .filter(|&&j| j as usize != i)
            .map(|&j| self.labels[j as usize])
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

fn ident_pair(g: &Graph, u: NodeId, v: NodeId) -> (u64, u64) {
    let (a, b) = (g.ident(u), g.ident(v));
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Solve `problem` by the sequential greedy process over edges in
/// ascending **label** order — the exact order the distributed line-graph
/// adapter realizes, and the ground truth its outputs are compared to.
/// Returns outputs in canonical edge order.
///
/// # Panics
/// Panics if `inputs.len()` is not the number of edges.
pub fn solve_edges_sequentially<P: EdgeProblem>(
    problem: &P,
    graph: &Graph,
    idx: &EdgeIndex,
    inputs: &[P::Input],
) -> Vec<P::Output> {
    let order: Vec<u32> = (1..=idx.m() as u64)
        .map(|l| idx.index_of_label(l) as u32)
        .collect();
    solve_edges_in_order(problem, graph, idx, inputs, &order)
}

/// Solve `problem` greedily processing edges in the given canonical-index
/// `order` (any permutation — O-LOCAL membership demands validity for all
/// of them). Returns outputs in canonical edge order.
///
/// # Panics
/// Panics if `inputs.len() != idx.m()` or `order` is not a permutation of
/// `0..m`.
pub fn solve_edges_in_order<P: EdgeProblem>(
    problem: &P,
    graph: &Graph,
    idx: &EdgeIndex,
    inputs: &[P::Input],
    order: &[u32],
) -> Vec<P::Output> {
    assert_eq!(inputs.len(), idx.m(), "inputs length mismatch");
    assert_eq!(order.len(), idx.m(), "order length mismatch");
    let mut outputs: Vec<Option<P::Output>> = vec![None; idx.m()];
    for &i in order {
        let i = i as usize;
        let mut out_neighbors: Vec<(u64, P::Output)> = Vec::new();
        let (u, v) = idx.edges()[i];
        for &j in idx.incident(u).iter().chain(idx.incident(v)) {
            let j = j as usize;
            if j != i {
                if let Some(o) = &outputs[j] {
                    out_neighbors.push((idx.label(j), o.clone()));
                }
            }
        }
        out_neighbors.sort_by_key(|&(l, _)| l);
        out_neighbors.dedup_by_key(|&mut (l, _)| l);
        let view = EdgeGreedyView {
            label: idx.label(i),
            endpoints: idx.endpoint_idents(graph, i),
            line_degree: idx.line_degree(graph, i),
            input: &inputs[i],
            out_neighbors: &out_neighbors,
        };
        outputs[i] = Some(problem.decide(&view));
    }
    outputs
        .into_iter()
        .map(|o| o.expect("all edges decided"))
        .collect()
}

/// Maximal (inclusion-wise) matching.
///
/// **Membership:** edge `e` joins iff no previously decided adjacent edge
/// joined — MIS on the line graph. Independence: of two adjacent edges,
/// the later-processed one sees the earlier and declines if it joined.
/// Maximality: an edge that declines saw a joined adjacent edge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaximalMatching;

impl EdgeProblem for MaximalMatching {
    type Input = ();
    /// `true` = in the matching.
    type Output = bool;

    fn name(&self) -> &'static str {
        "maximal matching"
    }

    fn decide(&self, view: &EdgeGreedyView<'_, (), bool>) -> bool {
        view.out_neighbors.iter().all(|(_, joined)| !joined)
    }

    fn validate(&self, graph: &Graph, _inputs: &[()], outputs: &[bool]) -> Result<(), Violation> {
        let idx = EdgeIndex::new(graph);
        expect_len(&idx, outputs.len())?;
        // Independence: at most one matched edge per vertex.
        let mut matched_at: Vec<Option<u32>> = vec![None; graph.n()];
        for (i, &(u, v)) in idx.edges().iter().enumerate() {
            if !outputs[i] {
                continue;
            }
            for w in [u, v] {
                if let Some(j) = matched_at[w.index()] {
                    let (a, b) = idx.edges()[j as usize];
                    return Err(Violation::new(
                        "two matched edges share an endpoint",
                        vec![a, b, u, v],
                    ));
                }
                matched_at[w.index()] = Some(i as u32);
            }
        }
        // Maximality: every unmatched edge has a matched endpoint.
        for (i, &(u, v)) in idx.edges().iter().enumerate() {
            if !outputs[i] && matched_at[u.index()].is_none() && matched_at[v.index()].is_none() {
                return Err(Violation::new(
                    "unmatched edge with both endpoints free (not maximal)",
                    vec![u, v],
                ));
            }
        }
        Ok(())
    }

    fn trivial_inputs(&self, graph: &Graph) -> Vec<()> {
        vec![(); graph.m()]
    }
}

/// `(2Δ−1)`-edge coloring, greedily as degree+1 list coloring on the line
/// graph: edge `e` picks the first color in `{0, …, deg_L(e)}` unused by
/// its decided neighbors.
///
/// **Membership:** `e` has `deg_L(e) = deg(u) + deg(v) − 2 ≤ 2Δ − 2`
/// adjacent edges, so some color in `{0, …, deg_L(e)}` ⊆ `{0, …, 2Δ−2}` is
/// free whenever `e` is decided, for every processing order. Every pair of
/// adjacent edges is ordered, and the later one avoids the earlier one's
/// color, so the coloring is proper with at most `2Δ − 1` colors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdgeColoring;

impl EdgeProblem for EdgeColoring {
    type Input = ();
    type Output = u64;

    fn name(&self) -> &'static str {
        "(2Δ-1)-edge-coloring"
    }

    fn decide(&self, view: &EdgeGreedyView<'_, (), u64>) -> u64 {
        // Smallest color no decided neighbor uses. The quadratic scan is
        // intentional: `decide` sits on the adapter's zero-allocation
        // steady-state path, and with at most `2Δ − 2` neighbors it beats
        // collecting + sorting a scratch vector anyway.
        let mut pick = 0u64;
        while view.out_neighbors.iter().any(|(_, c)| *c == pick) {
            pick += 1;
        }
        pick
    }

    fn validate(&self, graph: &Graph, _inputs: &[()], outputs: &[u64]) -> Result<(), Violation> {
        let idx = EdgeIndex::new(graph);
        expect_len(&idx, outputs.len())?;
        // Properness: all edges at a vertex carry distinct colors.
        for v in graph.nodes() {
            let inc = idx.incident(v);
            let mut colors: Vec<(u64, u32)> =
                inc.iter().map(|&i| (outputs[i as usize], i)).collect();
            colors.sort_unstable();
            for w in colors.windows(2) {
                if w[0].0 == w[1].0 {
                    let (a, b) = idx.edges()[w[0].1 as usize];
                    let (c, d) = idx.edges()[w[1].1 as usize];
                    return Err(Violation::new(
                        format!("adjacent edges share color {}", w[0].0),
                        vec![a, b, c, d],
                    ));
                }
            }
        }
        // Palette: colors fit {0, …, 2Δ−2}.
        let delta = graph.max_degree() as u64;
        let bound = (2 * delta).saturating_sub(2);
        for (i, &c) in outputs.iter().enumerate() {
            if c > bound {
                let (u, v) = idx.edges()[i];
                return Err(Violation::new(
                    format!("color {c} exceeds 2Δ−2 = {bound}"),
                    vec![u, v],
                ));
            }
        }
        Ok(())
    }

    fn trivial_inputs(&self, graph: &Graph) -> Vec<()> {
        vec![(); graph.m()]
    }
}

fn expect_len(idx: &EdgeIndex, got: usize) -> Result<(), Violation> {
    if got != idx.m() {
        return Err(Violation::new(
            format!("output length {got} != m = {}", idx.m()),
            vec![],
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use awake_graphs::{generators, ops, AcyclicOrientation};

    /// A deterministic shuffled processing order (xorshift; no rand dep).
    fn shuffled_order(m: usize, mut seed: u64) -> Vec<u32> {
        let mut order: Vec<u32> = (0..m as u32).collect();
        for i in (1..m).rev() {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            order.swap(i, (seed % (i as u64 + 1)) as usize);
        }
        order
    }

    fn check_on<P: EdgeProblem>(p: &P, g: &Graph, seed: u64) {
        let idx = EdgeIndex::new(g);
        let inputs = p.trivial_inputs(g);
        let order = shuffled_order(idx.m(), seed.wrapping_mul(2) + 1);
        let outputs = solve_edges_in_order(p, g, &idx, &inputs, &order);
        p.validate(g, &inputs, &outputs)
            .unwrap_or_else(|e| panic!("{} failed: {e}", p.name()));
    }

    #[test]
    fn edge_problems_hold_on_families_for_every_order() {
        let graphs = vec![
            generators::path(17),
            generators::cycle(12),
            generators::complete(9),
            generators::star(10),
            generators::gnp(40, 0.15, 3),
            generators::grid(5, 6),
            generators::random_tree(25, 8),
            generators::caterpillar(6, 3),
        ];
        for g in &graphs {
            for seed in 0..5 {
                check_on(&MaximalMatching, g, seed);
                check_on(&EdgeColoring, g, seed);
            }
        }
    }

    #[test]
    fn labels_rank_by_ident_pair_and_round_trip() {
        // Remap idents so canonical order and label order differ.
        let g = generators::path(5).with_idents(vec![50, 10, 40, 20, 30]);
        let idx = EdgeIndex::new(&g);
        assert_eq!(idx.m(), 4);
        // ident pairs: (10,50), (10,40), (20,40), (20,30) → sorted:
        // (10,40) < (10,50) < (20,30) < (20,40)
        assert_eq!(idx.label(0), 2); // edge (v0,v1) = (50,10)
        assert_eq!(idx.label(1), 1); // edge (v1,v2) = (10,40)
        assert_eq!(idx.label(2), 4); // edge (v2,v3) = (40,20)
        assert_eq!(idx.label(3), 3); // edge (v3,v4) = (20,30)
        for i in 0..idx.m() {
            assert_eq!(idx.index_of_label(idx.label(i)), i);
        }
        // owner = higher-ident endpoint
        assert_eq!(idx.owner(&g, 0), awake_graphs::NodeId(0)); // ident 50
        assert_eq!(idx.owner(&g, 3), awake_graphs::NodeId(4)); // ident 30
    }

    #[test]
    fn line_degrees_and_adjacency_agree_with_the_line_graph() {
        let g = generators::gnp(24, 0.2, 7);
        let idx = EdgeIndex::new(&g);
        let lg = ops::line_graph(&g);
        assert_eq!(lg.graph.n(), idx.m());
        for i in 0..idx.m() {
            assert_eq!(idx.line_degree(&g, i), lg.graph.degree(lg.node_of(i)));
            let adj = idx.adjacent_labels(i);
            assert_eq!(adj.len(), idx.line_degree(&g, i));
            let mut expect: Vec<u64> = lg
                .graph
                .neighbors(lg.node_of(i))
                .iter()
                .map(|&w| lg.graph.ident(w))
                .collect();
            expect.sort_unstable();
            assert_eq!(adj, expect, "edge {i}");
        }
    }

    #[test]
    fn matching_is_mis_on_the_line_graph() {
        // The sequential edge greedy in label order must equal the vertex
        // MIS greedy on L(G) along the by-ident orientation (line-graph
        // idents are the labels).
        let g = generators::gnp(30, 0.15, 5);
        let idx = EdgeIndex::new(&g);
        let edge_out = solve_edges_sequentially(&MaximalMatching, &g, &idx, &vec![(); idx.m()]);
        let lg = ops::line_graph(&g);
        let mis = crate::problems::MaximalIndependentSet;
        let mu = AcyclicOrientation::by_ident(&lg.graph);
        let vertex_out =
            crate::greedy::solve_sequentially(&mis, &lg.graph, &mu, &vec![(); lg.graph.n()]);
        for i in 0..idx.m() {
            assert_eq!(edge_out[i], vertex_out[lg.node_of(i).index()], "edge {i}");
        }
    }

    #[test]
    fn edge_coloring_uses_at_most_two_delta_minus_one_colors() {
        let g = generators::complete(8); // Δ = 7, palette 13
        let idx = EdgeIndex::new(&g);
        let out = solve_edges_sequentially(&EdgeColoring, &g, &idx, &vec![(); idx.m()]);
        let bound = 2 * g.max_degree() as u64 - 2;
        assert!(out.iter().all(|&c| c <= bound), "palette exceeded: {out:?}");
    }

    #[test]
    fn matching_validator_rejects_conflicts_and_non_maximal() {
        let g = generators::path(4); // edges (0,1),(1,2),(2,3)
        let err = MaximalMatching
            .validate(&g, &[(), (), ()], &[true, true, false])
            .unwrap_err();
        assert!(err.reason.contains("share an endpoint"));
        let err2 = MaximalMatching
            .validate(&g, &[(), (), ()], &[false, false, false])
            .unwrap_err();
        assert!(err2.reason.contains("not maximal"));
        MaximalMatching
            .validate(&g, &[(), (), ()], &[true, false, true])
            .unwrap();
    }

    #[test]
    fn edge_coloring_validator_rejects_conflicts_and_large_palette() {
        let g = generators::path(3); // Δ = 2, palette {0, 1, 2}
        let err = EdgeColoring.validate(&g, &[(), ()], &[1, 1]).unwrap_err();
        assert!(err.reason.contains("share color"));
        let err2 = EdgeColoring.validate(&g, &[(), ()], &[0, 9]).unwrap_err();
        assert!(err2.reason.contains("exceeds"));
        EdgeColoring.validate(&g, &[(), ()], &[0, 1]).unwrap();
    }

    #[test]
    fn validators_reject_wrong_length() {
        let g = generators::path(3);
        assert!(MaximalMatching.validate(&g, &[(), ()], &[true]).is_err());
        assert!(EdgeColoring.validate(&g, &[(), ()], &[0]).is_err());
    }

    #[test]
    fn empty_and_single_edge_graphs() {
        let g0 = generators::path(1);
        let idx0 = EdgeIndex::new(&g0);
        assert_eq!(idx0.m(), 0);
        let out: Vec<bool> = solve_edges_sequentially(&MaximalMatching, &g0, &idx0, &[]);
        assert!(out.is_empty());
        MaximalMatching.validate(&g0, &[], &[]).unwrap();

        let g1 = generators::path(2);
        let idx1 = EdgeIndex::new(&g1);
        let out = solve_edges_sequentially(&MaximalMatching, &g1, &idx1, &[()]);
        assert_eq!(out, vec![true]);
        let col = solve_edges_sequentially(&EdgeColoring, &g1, &idx1, &[()]);
        assert_eq!(col, vec![0]);
    }
}
