//! Executable demonstration that **distance-2 coloring is not O-LOCAL**
//! (§2.2 of the paper).
//!
//! The paper's argument: take the path `P` on `n ≥ 6` nodes with the edge
//! orientation `µ` in which every two incident edges point in opposite
//! directions. Under `µ`, every node of out-degree 0 must fix its color
//! knowing nothing but its own identifier. For any function
//! `f : {1..n} → {1..5}` there is an identifier assignment making `f`
//! collide on two nodes at distance 2 — so no greedy rule with a (Δ²+1)=5
//! palette can exist.
//!
//! [`defeat_distance2_rule`] turns that proof into code: given *any*
//! claimed greedy rule `f` (the color a sink picks as a function of its
//! identifier), it constructs an identifier assignment on the path under
//! which the rule produces an invalid distance-2 coloring.

use awake_graphs::{generators, Graph};

/// The alternating orientation's sink positions on a path of length `n`:
/// even positions are sinks (out-degree 0) when edges alternate
/// `0←1→2←3→4…`.
pub fn sink_positions(n: usize) -> Vec<usize> {
    (0..n).step_by(2).collect()
}

/// Given a claimed sink rule `f : ident → color` with palette `{0..palette}`
/// for distance-2 coloring on paths, find an identifier assignment for the
/// `n`-node path on which two sinks at distance 2 collide. Returns the
/// adversarial graph and the two colliding node positions, or `None` if `f`
/// is injective-enough to survive (impossible when the number of sinks
/// exceeds the palette size, by pigeonhole).
pub fn defeat_distance2_rule<F: Fn(u64) -> u64>(
    n: usize,
    palette: u64,
    f: F,
) -> Option<(Graph, usize, usize)> {
    assert!(n >= 6, "the paper's argument needs n >= 6");
    let sinks = sink_positions(n);
    // Pigeonhole over identifiers 1..=n: find two idents with equal f-value;
    // place them on two sinks at distance 2.
    let mut by_color: std::collections::BTreeMap<u64, Vec<u64>> = Default::default();
    for ident in 1..=n as u64 {
        let c = f(ident);
        assert!(c < palette, "rule must respect the palette");
        by_color.entry(c).or_default().push(ident);
    }
    let collide = by_color.values().find(|v| v.len() >= 2)?;
    let (a, b) = (collide[0], collide[1]);
    // Put ident a at sink position s0 and ident b at sink position s0+2.
    let (s0, s1) = (sinks[0], sinks[1]);
    debug_assert_eq!(s1 - s0, 2);
    let mut idents: Vec<u64> = Vec::with_capacity(n);
    let mut rest: Vec<u64> = (1..=n as u64).filter(|&i| i != a && i != b).collect();
    for pos in 0..n {
        if pos == s0 {
            idents.push(a);
        } else if pos == s1 {
            idents.push(b);
        } else {
            idents.push(rest.pop().expect("enough identifiers"));
        }
    }
    Some((generators::alternating_path(n, idents), s0, s1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use awake_graphs::NodeId;

    #[test]
    fn sinks_are_every_other_node() {
        assert_eq!(sink_positions(7), vec![0, 2, 4, 6]);
    }

    #[test]
    fn every_rule_with_small_palette_is_defeated() {
        // Try a few "clever" rules; with palette 5 and n = 12 identifiers,
        // pigeonhole guarantees defeat.
        let rules: Vec<Box<dyn Fn(u64) -> u64>> = vec![
            Box::new(|id| id % 5),
            Box::new(|id| (id * 7 + 3) % 5),
            Box::new(|id| if id < 6 { id - 1 } else { (id * id) % 5 }),
        ];
        for f in rules {
            let (g, s0, s1) =
                defeat_distance2_rule(12, 5, &f).expect("pigeonhole must find a collision");
            // The two sinks are at distance 2 and the rule colors them equal:
            let c0 = f(g.ident(NodeId(s0 as u32)));
            let c1 = f(g.ident(NodeId(s1 as u32)));
            assert_eq!(c0, c1, "adversarial placement forces a collision");
            assert_eq!(s1 - s0, 2);
        }
    }

    #[test]
    fn injective_rule_with_huge_palette_survives() {
        // With palette >= n an injective rule cannot be defeated — the
        // construction correctly reports None.
        assert!(defeat_distance2_rule(8, 100, |id| id).is_none());
    }
}
