//! Canonical O-LOCAL problems.
//!
//! Each problem's doc comment carries the argument for why the greedy step
//! is correct under **every** acyclic orientation — the membership proof
//! obligation of the class.

use crate::problem::{GreedyView, OLocalProblem, Violation};
use awake_graphs::Graph;

/// (Δ+1)-vertex coloring.
///
/// **Membership:** when `v` is decided, only its out-neighbors (≤ deg(v) ≤ Δ
/// many) constrain it, so some color in `{0, …, Δ}` — indeed in
/// `{0, …, deg(v)}` — is free. Every edge is an out-edge of exactly one
/// endpoint (the later-processed one), which sees the other's color, so the
/// result is proper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaPlusOneColoring;

impl OLocalProblem for DeltaPlusOneColoring {
    type Input = ();
    type Output = u64;

    fn name(&self) -> &'static str {
        "(Δ+1)-coloring"
    }

    fn decide(&self, view: &GreedyView<'_, (), u64>) -> u64 {
        let mut used: Vec<u64> = view.out_neighbors.iter().map(|(_, c)| *c).collect();
        used.sort_unstable();
        used.dedup();
        first_free(&used)
    }

    fn validate(&self, graph: &Graph, _inputs: &[()], outputs: &[u64]) -> Result<(), Violation> {
        expect_len(graph, outputs.len())?;
        for (u, v) in graph.edges() {
            if outputs[u.index()] == outputs[v.index()] {
                return Err(Violation::new(
                    format!("monochromatic edge with color {}", outputs[u.index()]),
                    vec![u, v],
                ));
            }
        }
        let delta = graph.max_degree() as u64;
        if let Some(v) = graph.nodes().find(|&v| outputs[v.index()] > delta) {
            return Err(Violation::new(
                format!("color {} exceeds Δ = {delta}", outputs[v.index()]),
                vec![v],
            ));
        }
        Ok(())
    }

    fn trivial_inputs(&self, graph: &Graph) -> Vec<()> {
        vec![(); graph.n()]
    }
}

/// Degree+1 list coloring: node `v` receives a list of `deg(v)+1` colors and
/// must pick one of them, properly.
///
/// **Membership:** `v` has at most `deg(v)` out-neighbors, so at least one
/// list entry is unused by them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegreePlusOneListColoring;

impl OLocalProblem for DegreePlusOneListColoring {
    /// The color list (must have length ≥ deg(v)+1, entries distinct).
    type Input = Vec<u64>;
    type Output = u64;

    fn name(&self) -> &'static str {
        "(deg+1)-list-coloring"
    }

    fn decide(&self, view: &GreedyView<'_, Vec<u64>, u64>) -> u64 {
        let used: Vec<u64> = view.out_neighbors.iter().map(|(_, c)| *c).collect();
        *view
            .input
            .iter()
            .find(|c| !used.contains(c))
            .expect("list has deg+1 entries, at most deg are blocked")
    }

    fn validate(
        &self,
        graph: &Graph,
        inputs: &[Vec<u64>],
        outputs: &[u64],
    ) -> Result<(), Violation> {
        expect_len(graph, outputs.len())?;
        for v in graph.nodes() {
            let mut list = inputs[v.index()].clone();
            list.sort_unstable();
            list.dedup();
            if list.len() < graph.degree(v) + 1 {
                return Err(Violation::new(
                    format!(
                        "list of {} distinct colors < deg+1 = {}",
                        list.len(),
                        graph.degree(v) + 1
                    ),
                    vec![v],
                ));
            }
            if !inputs[v.index()].contains(&outputs[v.index()]) {
                return Err(Violation::new("color not from the node's list", vec![v]));
            }
        }
        for (u, v) in graph.edges() {
            if outputs[u.index()] == outputs[v.index()] {
                return Err(Violation::new("monochromatic edge", vec![u, v]));
            }
        }
        Ok(())
    }

    /// Lists `{0, …, deg(v)}` — reduces to (deg+1)-coloring.
    fn trivial_inputs(&self, graph: &Graph) -> Vec<Vec<u64>> {
        graph
            .nodes()
            .map(|v| (0..=graph.degree(v) as u64).collect())
            .collect()
    }
}

/// Maximal independent set.
///
/// **Membership:** `v` joins iff no out-neighbor joined. Independence: each
/// edge is the out-edge of its later endpoint, which declines if the earlier
/// one joined. Maximality: a node that declines has a joined out-neighbor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaximalIndependentSet;

impl OLocalProblem for MaximalIndependentSet {
    type Input = ();
    /// `true` = in the set.
    type Output = bool;

    fn name(&self) -> &'static str {
        "MIS"
    }

    fn decide(&self, view: &GreedyView<'_, (), bool>) -> bool {
        view.out_neighbors.iter().all(|(_, joined)| !joined)
    }

    fn validate(&self, graph: &Graph, _inputs: &[()], outputs: &[bool]) -> Result<(), Violation> {
        expect_len(graph, outputs.len())?;
        for (u, v) in graph.edges() {
            if outputs[u.index()] && outputs[v.index()] {
                return Err(Violation::new("adjacent nodes both in MIS", vec![u, v]));
            }
        }
        for v in graph.nodes() {
            if !outputs[v.index()] && !graph.neighbors(v).iter().any(|&u| outputs[u.index()]) {
                return Err(Violation::new(
                    "node outside MIS with no neighbor inside (not maximal)",
                    vec![v],
                ));
            }
        }
        Ok(())
    }

    fn trivial_inputs(&self, graph: &Graph) -> Vec<()> {
        vec![(); graph.n()]
    }
}

/// Minimal (inclusion-wise) vertex cover.
///
/// **Membership:** `v` joins iff some out-neighbor stayed out. Coverage:
/// every edge is the out-edge of its later endpoint `u`; if the earlier
/// endpoint is out, `u` joins. Minimality: a node joins only because of an
/// uncovered incident edge that *needs* it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinimalVertexCover;

impl OLocalProblem for MinimalVertexCover {
    type Input = ();
    /// `true` = in the cover.
    type Output = bool;

    fn name(&self) -> &'static str {
        "minimal vertex cover"
    }

    fn decide(&self, view: &GreedyView<'_, (), bool>) -> bool {
        view.out_neighbors.iter().any(|(_, in_cover)| !in_cover)
    }

    fn validate(&self, graph: &Graph, _inputs: &[()], outputs: &[bool]) -> Result<(), Violation> {
        expect_len(graph, outputs.len())?;
        for (u, v) in graph.edges() {
            if !outputs[u.index()] && !outputs[v.index()] {
                return Err(Violation::new("uncovered edge", vec![u, v]));
            }
        }
        // minimality: every cover node has a neighbor outside the cover
        // (otherwise it could be removed).
        for v in graph.nodes() {
            if outputs[v.index()]
                && graph.degree(v) > 0
                && graph.neighbors(v).iter().all(|&u| outputs[u.index()])
            {
                return Err(Violation::new(
                    "redundant cover node (all neighbors covered)",
                    vec![v],
                ));
            }
            if outputs[v.index()] && graph.degree(v) == 0 {
                return Err(Violation::new("isolated node in cover", vec![v]));
            }
        }
        Ok(())
    }

    fn trivial_inputs(&self, graph: &Graph) -> Vec<()> {
        vec![(); graph.n()]
    }
}

fn first_free(used_sorted: &[u64]) -> u64 {
    let mut pick = 0u64;
    for &c in used_sorted {
        if c == pick {
            pick += 1;
        } else if c > pick {
            break;
        }
    }
    pick
}

fn expect_len(graph: &Graph, got: usize) -> Result<(), Violation> {
    if got != graph.n() {
        return Err(Violation::new(
            format!("output length {got} != n = {}", graph.n()),
            vec![],
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::solve_sequentially;
    use awake_graphs::{generators, AcyclicOrientation, NodeId};

    fn check_on<P: OLocalProblem>(p: &P, g: &Graph, seed: u64) {
        let mu = AcyclicOrientation::random(g, seed);
        let inputs = p.trivial_inputs(g);
        let outputs = solve_sequentially(p, g, &mu, &inputs);
        p.validate(g, &inputs, &outputs)
            .unwrap_or_else(|e| panic!("{} failed: {e}", p.name()));
    }

    #[test]
    fn all_problems_on_families() {
        let graphs = vec![
            generators::path(17),
            generators::cycle(12),
            generators::complete(9),
            generators::star(10),
            generators::gnp(40, 0.15, 3),
            generators::grid(5, 6),
            generators::random_tree(25, 8),
        ];
        for g in &graphs {
            for seed in 0..3 {
                check_on(&DeltaPlusOneColoring, g, seed);
                check_on(&DegreePlusOneListColoring, g, seed);
                check_on(&MaximalIndependentSet, g, seed);
                check_on(&MinimalVertexCover, g, seed);
            }
        }
    }

    #[test]
    fn coloring_uses_at_most_delta_plus_one_colors() {
        let g = generators::gnp(50, 0.3, 5);
        let p = DeltaPlusOneColoring;
        let mu = AcyclicOrientation::by_ident(&g);
        let out = solve_sequentially(&p, &g, &mu, &p.trivial_inputs(&g));
        assert!(out.iter().all(|&c| c <= g.max_degree() as u64));
    }

    #[test]
    fn coloring_validator_rejects_monochromatic() {
        let g = generators::path(2);
        let err = DeltaPlusOneColoring
            .validate(&g, &[(), ()], &[0, 0])
            .unwrap_err();
        assert!(err.reason.contains("monochromatic"));
    }

    #[test]
    fn coloring_validator_rejects_large_palette() {
        let g = generators::path(2);
        let err = DeltaPlusOneColoring
            .validate(&g, &[(), ()], &[0, 9])
            .unwrap_err();
        assert!(err.reason.contains("exceeds"));
    }

    #[test]
    fn mis_validator_rejects_non_maximal() {
        let g = generators::path(3);
        let err = MaximalIndependentSet
            .validate(&g, &[(), (), ()], &[false, false, false])
            .unwrap_err();
        assert!(err.reason.contains("maximal"));
        let err2 = MaximalIndependentSet
            .validate(&g, &[(), (), ()], &[true, true, false])
            .unwrap_err();
        assert!(err2.reason.contains("adjacent"));
    }

    #[test]
    fn vc_validator_rejects_uncovered_and_redundant() {
        let g = generators::path(3);
        let err = MinimalVertexCover
            .validate(&g, &[(), (), ()], &[false, false, false])
            .unwrap_err();
        assert!(err.reason.contains("uncovered"));
        let err2 = MinimalVertexCover
            .validate(&g, &[(), (), ()], &[true, true, true])
            .unwrap_err();
        assert!(err2.reason.contains("redundant"));
    }

    #[test]
    fn list_coloring_respects_lists() {
        let g = generators::cycle(5);
        let p = DegreePlusOneListColoring;
        // custom disjoint-ish lists
        let inputs: Vec<Vec<u64>> = (0..5).map(|i| vec![i, i + 10, i + 20]).collect();
        let mu = AcyclicOrientation::by_ident(&g);
        let out = solve_sequentially(&p, &g, &mu, &inputs);
        p.validate(&g, &inputs, &out).unwrap();
        for v in g.nodes() {
            assert!(inputs[v.index()].contains(&out[v.index()]));
        }
    }

    #[test]
    fn list_coloring_validator_rejects_short_list() {
        let g = generators::path(2);
        let err = DegreePlusOneListColoring
            .validate(&g, &[vec![1], vec![1, 2]], &[1, 2])
            .unwrap_err();
        assert!(err.reason.contains("deg+1"));
    }

    #[test]
    fn violation_display() {
        let v = Violation::new("boom", vec![NodeId(3)]);
        assert!(v.to_string().contains("boom"));
    }
}
