//! The sequential greedy reference executor — the class-defining algorithm.

use crate::problem::{GreedyView, OLocalProblem};
use awake_graphs::{AcyclicOrientation, Graph, NodeId};
use std::collections::BTreeMap;

/// Solve `problem` on `graph` by the sequential greedy process along
/// orientation `mu`, processing nodes in a topological order (descendants
/// first). This is the definitional algorithm of the O-LOCAL class and the
/// ground truth the distributed solvers are validated against.
///
/// # Panics
/// Panics if `inputs.len() != graph.n()`.
pub fn solve_sequentially<P: OLocalProblem>(
    problem: &P,
    graph: &Graph,
    mu: &AcyclicOrientation,
    inputs: &[P::Input],
) -> Vec<P::Output> {
    assert_eq!(inputs.len(), graph.n(), "inputs length mismatch");
    let order = mu.topological_order(graph);
    let mut outputs: Vec<Option<P::Output>> = vec![None; graph.n()];
    let mut closure_cache: BTreeMap<u64, P::Output> = BTreeMap::new();
    for v in order {
        let out_neighbors: Vec<(u64, P::Output)> = mu
            .out_neighbors(graph, v)
            .into_iter()
            .map(|u| {
                (
                    graph.ident(u),
                    outputs[u.index()]
                        .clone()
                        .expect("topological order: descendants decided first"),
                )
            })
            .collect();
        // For full-closure problems, expose the closure's outputs.
        let closure: BTreeMap<u64, P::Output> = if problem.needs_full_closure() {
            mu.descendants(graph, v)
                .into_iter()
                .map(|u| {
                    (
                        graph.ident(u),
                        outputs[u.index()].clone().expect("descendants decided"),
                    )
                })
                .collect()
        } else {
            out_neighbors.iter().cloned().collect()
        };
        closure_cache.clear();
        closure_cache.extend(closure);
        let view = GreedyView {
            ident: graph.ident(v),
            degree: graph.degree(v),
            input: &inputs[v.index()],
            out_neighbors: &out_neighbors,
            closure_outputs: &closure_cache,
        };
        outputs[v.index()] = Some(problem.decide(&view));
    }
    outputs
        .into_iter()
        .map(|o| o.expect("all nodes decided"))
        .collect()
}

/// Decide a set of nodes *inside a cluster* in `(δ, ident)` order given
/// already-known outputs for nodes outside (used by Theorem 9's Π′ greedy;
/// exposed here so the core crate and tests share one implementation).
///
/// `members` lists the cluster's nodes with their BFS depth `δ`; `mu` must
/// orient every intra-member edge consistently with `(δ, ident)` ascending
/// and every member↔outside edge toward `known` outputs that are already
/// present. Returns outputs for the members.
///
/// # Panics
/// Panics if an out-neighbor's output is neither known nor a member decided
/// earlier — that indicates the caller violated the orientation contract.
pub fn solve_cluster<P: OLocalProblem>(
    problem: &P,
    graph: &Graph,
    mu: &AcyclicOrientation,
    inputs: &[P::Input],
    members: &[(NodeId, u32)],
    known: &BTreeMap<NodeId, P::Output>,
) -> BTreeMap<NodeId, P::Output> {
    let mut order: Vec<(u32, u64, NodeId)> = members
        .iter()
        .map(|&(v, d)| (d, graph.ident(v), v))
        .collect();
    order.sort_unstable();
    let mut decided: BTreeMap<NodeId, P::Output> = BTreeMap::new();
    for (_, _, v) in order {
        let out_neighbors: Vec<(u64, P::Output)> = mu
            .out_neighbors(graph, v)
            .into_iter()
            .map(|u| {
                let out = decided
                    .get(&u)
                    .or_else(|| known.get(&u))
                    .unwrap_or_else(|| panic!("out-neighbor {u} of {v} has no decided output"))
                    .clone();
                (graph.ident(u), out)
            })
            .collect();
        let mut closure: BTreeMap<u64, P::Output> = out_neighbors.iter().cloned().collect();
        if problem.needs_full_closure() {
            for (k, val) in known {
                closure.insert(graph.ident(*k), val.clone());
            }
            for (k, val) in &decided {
                closure.insert(graph.ident(*k), val.clone());
            }
        }
        let view = GreedyView {
            ident: graph.ident(v),
            degree: graph.degree(v),
            input: &inputs[v.index()],
            out_neighbors: &out_neighbors,
            closure_outputs: &closure,
        };
        let out = problem.decide(&view);
        decided.insert(v, out);
    }
    decided
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::{DeltaPlusOneColoring, MaximalIndependentSet};
    use awake_graphs::generators;

    #[test]
    fn sequential_matches_validate_for_every_orientation_seed() {
        let g = generators::gnp(25, 0.25, 1);
        let p = MaximalIndependentSet;
        for seed in 0..10 {
            let mu = AcyclicOrientation::random(&g, seed);
            let out = solve_sequentially(&p, &g, &mu, &p.trivial_inputs(&g));
            p.validate(&g, &p.trivial_inputs(&g), &out).unwrap();
        }
    }

    #[test]
    fn cluster_greedy_agrees_with_global_on_partition() {
        // Partition a path into two halves; decide the low half globally,
        // then the high half via solve_cluster with the boundary known.
        let g = generators::path(8);
        let p = DeltaPlusOneColoring;
        // Orientation: all edges toward smaller ident (priority = ident).
        let mu = AcyclicOrientation::by_ident(&g);
        let full = solve_sequentially(&p, &g, &mu, &p.trivial_inputs(&g));
        let known: BTreeMap<NodeId, u64> =
            (0..4u32).map(|v| (NodeId(v), full[v as usize])).collect();
        // members: nodes 4..8 with δ = distance from node 4
        let members: Vec<(NodeId, u32)> = (4..8u32).map(|v| (NodeId(v), v - 4)).collect();
        let got = solve_cluster(&p, &g, &mu, &p.trivial_inputs(&g), &members, &known);
        for (v, c) in got {
            assert_eq!(c, full[v.index()]);
        }
    }
}
