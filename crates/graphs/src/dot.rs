//! GraphViz DOT export, for debugging and the figure gallery.

use crate::{Graph, NodeId};
use std::fmt::Write as _;

/// Render the graph in DOT format. `label` supplies an optional extra label
/// per node (shown under the identifier).
///
/// # Example
/// ```
/// # use awake_graphs::{generators, to_dot};
/// let g = generators::path(2);
/// let dot = to_dot(&g, |_| None);
/// assert!(dot.contains("graph G"));
/// assert!(dot.contains("0 -- 1"));
/// ```
pub fn to_dot<F: Fn(NodeId) -> Option<String>>(g: &Graph, label: F) -> String {
    let mut out = String::from("graph G {\n  node [shape=circle];\n");
    for v in g.nodes() {
        match label(v) {
            Some(extra) => {
                let _ = writeln!(out, "  {} [label=\"{}\\n{}\"];", v.0, g.ident(v), extra);
            }
            None => {
                let _ = writeln!(out, "  {} [label=\"{}\"];", v.0, g.ident(v));
            }
        }
    }
    for (u, v) in g.edges() {
        let _ = writeln!(out, "  {} -- {};", u.0, v.0);
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn dot_contains_all_edges_and_labels() {
        let g = generators::cycle(3);
        let dot = to_dot(&g, |v| if v.0 == 0 { Some("root".into()) } else { None });
        assert!(dot.contains("0 -- 1"));
        assert!(dot.contains("1 -- 2"));
        assert!(dot.contains("0 -- 2"));
        assert!(dot.contains("root"));
        assert!(dot.ends_with("}\n"));
    }
}
