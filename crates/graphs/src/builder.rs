//! Validated graph construction.

use crate::graph::{Graph, NodeId};
use std::collections::BTreeSet;
use std::fmt;

/// Errors produced by [`GraphBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// An edge endpoint was `>= n`.
    NodeOutOfRange {
        /// The offending endpoint.
        node: u32,
        /// The declared node count.
        n: usize,
    },
    /// An edge `{v, v}` was added.
    SelfLoop(
        /// The node with the loop.
        u32,
    ),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::NodeOutOfRange { node, n } => {
                write!(f, "edge endpoint {node} out of range for n={n}")
            }
            BuildError::SelfLoop(v) => write!(f, "self-loop at node {v}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Incremental builder for [`Graph`].
///
/// Parallel edges are deduplicated silently; self-loops and out-of-range
/// endpoints are reported by [`build`](GraphBuilder::build).
///
/// # Example
/// ```
/// # use awake_graphs::GraphBuilder;
/// let mut b = GraphBuilder::new(4);
/// b.edge(0, 1).edge(1, 2).edge(1, 2); // duplicate is fine
/// let g = b.build()?;
/// assert_eq!(g.m(), 2);
/// # Ok::<(), awake_graphs::BuildError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: BTreeSet<(u32, u32)>,
    idents: Option<Vec<u64>>,
}

impl GraphBuilder {
    /// Start building a graph on `n` nodes and no edges.
    ///
    /// # Panics
    /// Panics if `n` exceeds the `u32` node-id space — edge endpoints are
    /// `u32`s, so a larger `n` could only be reached by silently
    /// truncating node ids (the failure mode this assert turns loud).
    pub fn new(n: usize) -> Self {
        assert!(
            n <= u32::MAX as usize,
            "n = {n} exceeds the u32 node-id space"
        );
        GraphBuilder {
            n,
            edges: BTreeSet::new(),
            idents: None,
        }
    }

    /// Add the undirected edge `{u, v}`; order and duplicates don't matter.
    pub fn edge(&mut self, u: u32, v: u32) -> &mut Self {
        let (a, b) = if u <= v { (u, v) } else { (v, u) };
        self.edges.insert((a, b));
        self
    }

    /// Add many edges at once.
    pub fn edges<I: IntoIterator<Item = (u32, u32)>>(&mut self, it: I) -> &mut Self {
        for (u, v) in it {
            self.edge(u, v);
        }
        self
    }

    /// Override the default `{1..n}` identifier assignment.
    ///
    /// Validation of distinctness happens in [`build`](GraphBuilder::build)
    /// via [`Graph::with_idents`].
    pub fn idents(&mut self, idents: Vec<u64>) -> &mut Self {
        self.idents = Some(idents);
        self
    }

    /// Number of distinct edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finalize into an immutable [`Graph`].
    ///
    /// # Errors
    /// Returns [`BuildError`] on self-loops or out-of-range endpoints.
    pub fn build(&self) -> Result<Graph, BuildError> {
        let n = self.n;
        for &(u, v) in &self.edges {
            if u == v {
                return Err(BuildError::SelfLoop(u));
            }
            if (v as usize) >= n {
                return Err(BuildError::NodeOutOfRange { node: v, n });
            }
        }
        let mut deg = vec![0u32; n];
        for &(u, v) in &self.edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for d in &deg {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut adjacency = vec![NodeId(0); acc as usize];
        for &(u, v) in &self.edges {
            adjacency[cursor[u as usize] as usize] = NodeId(v);
            cursor[u as usize] += 1;
            adjacency[cursor[v as usize] as usize] = NodeId(u);
            cursor[v as usize] += 1;
        }
        // Entries written via the second endpoint interleave with those from
        // the first, so sort each row to restore the sorted-adjacency invariant.
        for v in 0..n {
            let lo = offsets[v] as usize;
            let hi = offsets[v + 1] as usize;
            adjacency[lo..hi].sort_unstable();
        }
        let idents = self
            .idents
            .clone()
            .unwrap_or_else(|| (1..=n as u64).collect());
        // Route ident validation through with_idents to share the checks.
        let g = Graph::from_parts(offsets, adjacency, (1..=n as u64).collect());
        Ok(g.with_idents(idents))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedups_and_sorts() {
        let mut b = GraphBuilder::new(5);
        b.edge(3, 1).edge(1, 3).edge(0, 3).edge(4, 3);
        let g = b.build().unwrap();
        assert_eq!(g.m(), 3);
        assert_eq!(g.neighbors(NodeId(3)), &[NodeId(0), NodeId(1), NodeId(4)]);
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new(2);
        b.edge(1, 1);
        assert_eq!(b.build().unwrap_err(), BuildError::SelfLoop(1));
    }

    #[test]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        b.edge(0, 5);
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::NodeOutOfRange { node: 5, n: 2 }
        ));
    }

    #[test]
    fn custom_idents() {
        let mut b = GraphBuilder::new(2);
        b.edge(0, 1).idents(vec![7, 9]);
        let g = b.build().unwrap();
        assert_eq!(g.ident(NodeId(1)), 9);
    }

    #[test]
    fn isolated_nodes_allowed() {
        let g = GraphBuilder::new(3).build().unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.degree(NodeId(1)), 0);
    }

    #[test]
    fn display_of_errors() {
        assert!(BuildError::SelfLoop(3).to_string().contains("self-loop"));
        assert!(BuildError::NodeOutOfRange { node: 9, n: 2 }
            .to_string()
            .contains("out of range"));
    }
}
