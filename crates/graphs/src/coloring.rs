//! Coloring checks and centralized reference algorithms.
//!
//! Distributed coloring lives in `awake-core`; this module provides the
//! ground-truth validators and the sequential algorithms used to cross-check
//! distributed outputs.

use crate::{ops, Graph, NodeId};

/// A violation found by a coloring validator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColoringViolation {
    /// One endpoint of the offending pair.
    pub u: NodeId,
    /// The other endpoint.
    pub v: NodeId,
    /// The shared color.
    pub color: u64,
}

impl std::fmt::Display for ColoringViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "nodes {} and {} share color {}",
            self.u, self.v, self.color
        )
    }
}

impl std::error::Error for ColoringViolation {}

/// Check that `colors` is a proper vertex coloring of `g`.
///
/// # Errors
/// Returns the first monochromatic edge found.
pub fn check_proper(g: &Graph, colors: &[u64]) -> Result<(), ColoringViolation> {
    assert_eq!(colors.len(), g.n(), "color vector length mismatch");
    for (u, v) in g.edges() {
        if colors[u.index()] == colors[v.index()] {
            return Err(ColoringViolation {
                u,
                v,
                color: colors[u.index()],
            });
        }
    }
    Ok(())
}

/// Check that `colors` is a *distance-2* coloring of `g` (a proper coloring
/// of `G²`).
///
/// # Errors
/// Returns the first pair at distance ≤ 2 sharing a color.
pub fn check_distance2(g: &Graph, colors: &[u64]) -> Result<(), ColoringViolation> {
    check_proper(&ops::square(g), colors)
}

/// Number of distinct colors used.
pub fn palette_size(colors: &[u64]) -> usize {
    let mut c = colors.to_vec();
    c.sort_unstable();
    c.dedup();
    c.len()
}

/// Centralized greedy coloring in the given node order; returns colors in
/// `0..` (first-fit). Uses at most `Δ+1` colors for any order.
pub fn greedy_in_order(g: &Graph, order: &[NodeId]) -> Vec<u64> {
    assert_eq!(order.len(), g.n(), "order must cover all nodes");
    let mut colors = vec![u64::MAX; g.n()];
    for &v in order {
        let mut used: Vec<u64> = g
            .neighbors(v)
            .iter()
            .map(|&u| colors[u.index()])
            .filter(|&c| c != u64::MAX)
            .collect();
        used.sort_unstable();
        used.dedup();
        let mut pick = 0u64;
        for c in used {
            if c == pick {
                pick += 1;
            } else if c > pick {
                break;
            }
        }
        colors[v.index()] = pick;
    }
    colors
}

/// A degeneracy order (repeatedly remove a minimum-degree node) and the
/// degeneracy value. Greedy coloring along the *reverse* of this order uses
/// at most `degeneracy + 1` colors.
pub fn degeneracy_order(g: &Graph) -> (Vec<NodeId>, usize) {
    let n = g.n();
    let mut deg: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut degeneracy = 0;
    for _ in 0..n {
        let v = g
            .nodes()
            .filter(|&v| !removed[v.index()])
            .min_by_key(|&v| deg[v.index()])
            .expect("nodes remain");
        degeneracy = degeneracy.max(deg[v.index()]);
        removed[v.index()] = true;
        order.push(v);
        for &w in g.neighbors(v) {
            if !removed[w.index()] {
                deg[w.index()] -= 1;
            }
        }
    }
    (order, degeneracy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn proper_checker_accepts_and_rejects() {
        let g = generators::cycle(4);
        assert!(check_proper(&g, &[0, 1, 0, 1]).is_ok());
        let err = check_proper(&g, &[0, 0, 1, 1]).unwrap_err();
        assert_eq!(err.color, 0);
        assert!(err.to_string().contains("share color"));
    }

    #[test]
    fn distance2_checker() {
        let g = generators::path(3);
        // proper but not distance-2: endpoints share a color at distance 2.
        assert!(check_proper(&g, &[0, 1, 0]).is_ok());
        assert!(check_distance2(&g, &[0, 1, 0]).is_err());
        assert!(check_distance2(&g, &[0, 1, 2]).is_ok());
    }

    #[test]
    fn greedy_uses_at_most_delta_plus_one() {
        let g = generators::gnp(50, 0.2, 4);
        let order: Vec<NodeId> = g.nodes().collect();
        let colors = greedy_in_order(&g, &order);
        assert!(check_proper(&g, &colors).is_ok());
        assert!(palette_size(&colors) <= g.max_degree() + 1);
    }

    #[test]
    fn greedy_first_fit_picks_smallest() {
        let g = generators::star(4);
        let order: Vec<NodeId> = g.nodes().collect();
        let colors = greedy_in_order(&g, &order);
        assert_eq!(colors[0], 0);
        assert!(colors[1..].iter().all(|&c| c == 1));
    }

    #[test]
    fn degeneracy_of_tree_is_one() {
        let (order, d) = degeneracy_order(&generators::random_tree(30, 7));
        assert_eq!(d, 1);
        assert_eq!(order.len(), 30);
    }

    #[test]
    fn degeneracy_of_clique() {
        let (_, d) = degeneracy_order(&generators::complete(6));
        assert_eq!(d, 5);
    }

    #[test]
    fn palette_size_counts_distinct() {
        assert_eq!(palette_size(&[3, 3, 7, 1]), 3);
        assert_eq!(palette_size(&[]), 0);
    }
}
