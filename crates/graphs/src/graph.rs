//! The core immutable graph type.

use std::fmt;

/// Index of a node in a [`Graph`], contiguous in `0..n`.
///
/// `NodeId` is a *position*, not an identifier: distributed algorithms that
/// need unique identifiers from a polynomial range use [`Graph::ident`],
/// which defaults to `id + 1` (the `{1..n}` range of the paper's Remark
/// after Theorem 13) but can be remapped via [`Graph::with_idents`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The position as a `usize`, for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// An immutable simple undirected graph in CSR (compressed sparse row) form.
///
/// Invariants (enforced by [`crate::GraphBuilder`]):
/// * no self-loops,
/// * no parallel edges,
/// * adjacency lists sorted ascending,
/// * node identifiers (`ident`) are pairwise distinct and ≥ 1.
///
/// # Example
/// ```
/// use awake_graphs::{GraphBuilder, NodeId};
/// let mut b = GraphBuilder::new(3);
/// b.edge(0, 1).edge(1, 2);
/// let g = b.build().unwrap();
/// assert_eq!(g.neighbors(NodeId(1)), &[NodeId(0), NodeId(2)]);
/// assert_eq!(g.max_degree(), 2);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// CSR row offsets, length `n + 1`.
    offsets: Vec<u32>,
    /// Concatenated sorted adjacency lists, length `2m`.
    adjacency: Vec<NodeId>,
    /// Unique identifier of each node (the "ID" of the LOCAL model).
    idents: Vec<u64>,
}

impl Graph {
    pub(crate) fn from_parts(offsets: Vec<u32>, adjacency: Vec<NodeId>, idents: Vec<u64>) -> Self {
        debug_assert_eq!(offsets.len(), idents.len() + 1);
        Graph {
            offsets,
            adjacency,
            idents,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.idents.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.adjacency.len() / 2
    }

    /// Iterator over all node positions `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n() as u32).map(NodeId)
    }

    /// The sorted neighbor list of `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        &self.adjacency[lo..hi]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.neighbors(v).len()
    }

    /// Maximum degree Δ of the graph (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Whether `{u, v}` is an edge. `O(log deg)`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes()
            .flat_map(move |u| self.neighbors(u).iter().map(move |&w| (u, w)))
            .filter(|(u, w)| u < w)
    }

    /// The unique identifier of node `v` (≥ 1).
    ///
    /// Defaults to `v.0 + 1`, i.e. the `{1, …, n}` identifier range that the
    /// paper's Remark (after Theorem 13) uses to obtain `O(n²·2^{√log n})`
    /// round complexity.
    #[inline]
    pub fn ident(&self, v: NodeId) -> u64 {
        self.idents[v.index()]
    }

    /// Largest identifier present in the graph (0 for the empty graph).
    pub fn ident_bound(&self) -> u64 {
        self.idents.iter().copied().max().unwrap_or(0)
    }

    /// The node whose identifier is `ident`, if any. `O(n)`.
    pub fn node_with_ident(&self, ident: u64) -> Option<NodeId> {
        self.idents
            .iter()
            .position(|&i| i == ident)
            .map(|p| NodeId(p as u32))
    }

    /// Returns a copy of this graph with node identifiers replaced by
    /// `idents` (must be pairwise distinct and ≥ 1).
    ///
    /// # Panics
    /// Panics if `idents.len() != n`, if any identifier is 0, or if
    /// identifiers are not pairwise distinct.
    pub fn with_idents(&self, idents: Vec<u64>) -> Graph {
        assert_eq!(idents.len(), self.n(), "ident vector length mismatch");
        assert!(idents.iter().all(|&i| i >= 1), "identifiers must be >= 1");
        let mut sorted = idents.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), idents.len(), "identifiers must be distinct");
        Graph {
            offsets: self.offsets.clone(),
            adjacency: self.adjacency.clone(),
            idents,
        }
    }

    /// Sum of all degrees (= 2m); useful for sizing message buffers.
    pub fn degree_sum(&self) -> usize {
        self.adjacency.len()
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph(n={}, m={}, Δ={})",
            self.n(),
            self.m(),
            self.max_degree()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.edge(0, 1).edge(1, 2).edge(0, 2);
        b.build().unwrap()
    }

    #[test]
    fn basic_accessors() {
        let g = triangle();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.degree_sum(), 6);
        assert!(g.has_edge(NodeId(0), NodeId(2)));
        assert!(!g.has_edge(NodeId(0), NodeId(0)));
        assert_eq!(g.edges().count(), 3);
    }

    #[test]
    fn default_idents_are_one_based() {
        let g = triangle();
        assert_eq!(g.ident(NodeId(0)), 1);
        assert_eq!(g.ident(NodeId(2)), 3);
        assert_eq!(g.ident_bound(), 3);
        assert_eq!(g.node_with_ident(2), Some(NodeId(1)));
        assert_eq!(g.node_with_ident(99), None);
    }

    #[test]
    fn with_idents_remaps() {
        let g = triangle().with_idents(vec![10, 20, 30]);
        assert_eq!(g.ident(NodeId(1)), 20);
        assert_eq!(g.ident_bound(), 30);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn with_idents_rejects_duplicates() {
        triangle().with_idents(vec![5, 5, 6]);
    }

    #[test]
    #[should_panic(expected = ">= 1")]
    fn with_idents_rejects_zero() {
        triangle().with_idents(vec![0, 1, 2]);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build().unwrap();
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.ident_bound(), 0);
    }

    #[test]
    fn edges_yield_each_once_ordered() {
        let g = triangle();
        let e: Vec<_> = g.edges().collect();
        assert_eq!(
            e,
            vec![
                (NodeId(0), NodeId(1)),
                (NodeId(0), NodeId(2)),
                (NodeId(1), NodeId(2))
            ]
        );
    }
}
