//! Graph operations: induced subgraphs, squares, unions, quotients.

use crate::{Graph, GraphBuilder, NodeId};
use std::collections::BTreeMap;

/// An induced subgraph together with the mapping back to the host graph.
#[derive(Debug, Clone)]
pub struct Induced {
    /// The subgraph; node `i` corresponds to `back[i]` in the host.
    pub graph: Graph,
    /// For each subgraph node, the host node it came from.
    pub back: Vec<NodeId>,
    /// For each host node, its subgraph position (if selected).
    pub fwd: Vec<Option<NodeId>>,
}

/// The subgraph induced by the selected nodes. Identifiers are inherited
/// from the host graph.
pub fn induced<F: Fn(NodeId) -> bool>(g: &Graph, select: F) -> Induced {
    let back: Vec<NodeId> = g.nodes().filter(|&v| select(v)).collect();
    let mut fwd = vec![None; g.n()];
    for (i, &v) in back.iter().enumerate() {
        fwd[v.index()] = Some(NodeId(i as u32));
    }
    let mut b = GraphBuilder::new(back.len());
    for (i, &v) in back.iter().enumerate() {
        for &w in g.neighbors(v) {
            if let Some(j) = fwd[w.index()] {
                if (i as u32) < j.0 {
                    b.edge(i as u32, j.0);
                }
            }
        }
    }
    b.idents(back.iter().map(|&v| g.ident(v)).collect());
    Induced {
        graph: b.build().expect("induced subgraph is valid"),
        back,
        fwd,
    }
}

/// The square `G²`: same nodes, edges between nodes at distance 1 or 2.
///
/// Lemma 15 computes a proper coloring of `G²` (a *distance-2* coloring
/// of `G`); this operation provides the centralized reference object.
pub fn square(g: &Graph) -> Graph {
    let mut b = GraphBuilder::new(g.n());
    for v in g.nodes() {
        for &u in g.neighbors(v) {
            if v < u {
                b.edge(v.0, u.0);
            }
            for &w in g.neighbors(u) {
                if v < w {
                    b.edge(v.0, w.0);
                }
            }
        }
    }
    b.idents(g.nodes().map(|v| g.ident(v)).collect());
    b.build().expect("square is valid")
}

/// Disjoint union: nodes of `b` are shifted by `a.n()`. Identifiers of `b`
/// are shifted by `a.ident_bound()` to stay distinct.
pub fn disjoint_union(a: &Graph, b: &Graph) -> Graph {
    let shift = a.n() as u32;
    let ident_shift = a.ident_bound();
    let mut builder = GraphBuilder::new(a.n() + b.n());
    for (u, v) in a.edges() {
        builder.edge(u.0, v.0);
    }
    for (u, v) in b.edges() {
        builder.edge(u.0 + shift, v.0 + shift);
    }
    let mut idents: Vec<u64> = a.nodes().map(|v| a.ident(v)).collect();
    idents.extend(b.nodes().map(|v| b.ident(v) + ident_shift));
    builder.idents(idents);
    builder.build().expect("union is valid")
}

/// A quotient (cluster contraction) of a graph, realizing the *virtual
/// graph* of Definitions 3 and 5 of the paper: each distinct label becomes
/// one vertex; two vertices are adjacent iff some cross-label edge exists.
#[derive(Debug, Clone)]
pub struct Quotient {
    /// The virtual graph. Vertex `i` has identifier = its cluster label.
    pub graph: Graph,
    /// Sorted distinct labels; `labels[i]` is the label of virtual vertex `i`.
    pub labels: Vec<u64>,
    /// For each host node with a label, the virtual vertex it maps to.
    pub vertex_of: Vec<Option<NodeId>>,
}

/// Contract nodes by label. Nodes with `label(v) == None` are dropped
/// (they are outside the clustered subgraph).
///
/// The caller is responsible for labels forming connected clusters when a
/// *uniquely-labeled* clustering is intended; this function contracts
/// whatever it is given (for colored clusterings, contract per component
/// before calling, or use `awake-core`'s clustering types which do).
pub fn quotient<F: Fn(NodeId) -> Option<u64>>(g: &Graph, label: F) -> Quotient {
    let mut labels: Vec<u64> = g.nodes().filter_map(&label).collect();
    labels.sort_unstable();
    labels.dedup();
    let index: BTreeMap<u64, u32> = labels
        .iter()
        .enumerate()
        .map(|(i, &l)| (l, i as u32))
        .collect();
    let mut vertex_of = vec![None; g.n()];
    for v in g.nodes() {
        if let Some(l) = label(v) {
            vertex_of[v.index()] = Some(NodeId(index[&l]));
        }
    }
    let mut b = GraphBuilder::new(labels.len());
    for (u, v) in g.edges() {
        if let (Some(cu), Some(cv)) = (vertex_of[u.index()], vertex_of[v.index()]) {
            if cu != cv {
                b.edge(cu.0, cv.0);
            }
        }
    }
    // Virtual vertices take their labels as identifiers. Labels may be 0 in
    // caller space; shift by 1 to satisfy the ident >= 1 invariant.
    b.idents(labels.iter().map(|&l| l + 1).collect());
    Quotient {
        graph: b.build().expect("quotient is valid"),
        labels,
        vertex_of,
    }
}

/// The line graph `L(G)` together with the mapping back to host edges.
#[derive(Debug, Clone)]
pub struct LineGraphOf {
    /// `L(G)`: node `i` is the `i`-th edge of [`Graph::edges`]; its
    /// identifier is the edge's 1-based rank under the lexicographic
    /// order of its identifier pair `(min ident, max ident)` — the same
    /// *label* `awake-olocal`'s `EdgeIndex` assigns.
    pub graph: Graph,
    /// For each line-graph node, the host edge's endpoints.
    pub host_edges: Vec<(NodeId, NodeId)>,
}

impl LineGraphOf {
    /// The line-graph node of the `i`-th canonical host edge.
    pub fn node_of(&self, i: usize) -> NodeId {
        NodeId(i as u32)
    }
}

/// The line graph `L(G)`: one node per edge of `G`, adjacent iff the
/// edges share an endpoint. Vertex problems on `L(G)` are edge problems
/// on `G` (maximal matching = MIS on `L(G)`); this is the centralized
/// reference object the distributed line-graph adapter in `awake-core`
/// is validated against.
pub fn line_graph(g: &Graph) -> LineGraphOf {
    let host_edges: Vec<(NodeId, NodeId)> = g.edges().collect();
    let mut incident: Vec<Vec<u32>> = vec![Vec::new(); g.n()];
    for (i, &(u, v)) in host_edges.iter().enumerate() {
        incident[u.index()].push(i as u32);
        incident[v.index()].push(i as u32);
    }
    let mut b = GraphBuilder::new(host_edges.len());
    for inc in &incident {
        for (a, &i) in inc.iter().enumerate() {
            for &j in &inc[a + 1..] {
                b.edge(i, j);
            }
        }
    }
    // Identifiers: rank of the endpoint-ident pair, 1-based.
    let mut order: Vec<u32> = (0..host_edges.len() as u32).collect();
    order.sort_by_key(|&i| {
        let (u, v) = host_edges[i as usize];
        let (a, b) = (g.ident(u), g.ident(v));
        if a < b {
            (a, b)
        } else {
            (b, a)
        }
    });
    let mut idents = vec![0u64; host_edges.len()];
    for (rank, &i) in order.iter().enumerate() {
        idents[i as usize] = rank as u64 + 1;
    }
    b.idents(idents);
    LineGraphOf {
        graph: b.build().expect("line graph is valid"),
        host_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn line_graph_of_path_and_star() {
        // L(P_4) = P_3
        let lg = line_graph(&generators::path(4));
        assert_eq!(lg.graph.n(), 3);
        assert_eq!(lg.graph.m(), 2);
        assert_eq!(lg.host_edges[0], (NodeId(0), NodeId(1)));
        // L(K_{1,4}) = K_4: all star edges share the hub
        let ls = line_graph(&generators::star(5));
        assert_eq!(ls.graph.n(), 4);
        assert_eq!(ls.graph.m(), 6);
    }

    #[test]
    fn line_graph_degree_sum_identity() {
        // |E(L(G))| = Σ_v C(deg v, 2)
        let g = generators::gnp(30, 0.2, 9);
        let lg = line_graph(&g);
        let expect: usize = g
            .nodes()
            .map(|v| g.degree(v) * g.degree(v).saturating_sub(1) / 2)
            .sum();
        assert_eq!(lg.graph.m(), expect);
        assert_eq!(lg.graph.n(), g.m());
    }

    #[test]
    fn line_graph_idents_rank_ident_pairs() {
        let g = generators::path(4).with_idents(vec![9, 2, 7, 4]);
        let lg = line_graph(&g);
        // pairs: (2,9), (2,7), (4,7) → sorted (2,7) < (2,9) < (4,7)
        assert_eq!(lg.graph.ident(NodeId(0)), 2);
        assert_eq!(lg.graph.ident(NodeId(1)), 1);
        assert_eq!(lg.graph.ident(NodeId(2)), 3);
    }

    #[test]
    fn induced_subgraph_keeps_idents() {
        let g = generators::cycle(6); // idents 1..=6
        let ind = induced(&g, |v| v.0 % 2 == 0);
        assert_eq!(ind.graph.n(), 3);
        assert_eq!(ind.graph.m(), 0); // even cycle: alternate nodes not adjacent
        assert_eq!(ind.graph.ident(NodeId(1)), 3); // host node v2
        assert_eq!(ind.back[2], NodeId(4));
        assert_eq!(ind.fwd[4], Some(NodeId(2)));
        assert_eq!(ind.fwd[1], None);
    }

    #[test]
    fn square_of_path() {
        let g = generators::path(5);
        let s = square(&g);
        assert!(s.has_edge(NodeId(0), NodeId(2)));
        assert!(!s.has_edge(NodeId(0), NodeId(3)));
        assert_eq!(s.m(), 4 + 3);
    }

    #[test]
    fn square_of_star_is_complete() {
        let s = square(&generators::star(6));
        assert_eq!(s.m(), 15);
    }

    #[test]
    fn union_shifts_idents() {
        let a = generators::path(3);
        let b = generators::path(2);
        let u = disjoint_union(&a, &b);
        assert_eq!(u.n(), 5);
        assert_eq!(u.m(), 3);
        assert_eq!(u.ident(NodeId(3)), 4); // b's node 0: ident 1 + shift 3
    }

    #[test]
    fn quotient_cycle_into_halves() {
        let g = generators::cycle(6);
        let q = quotient(&g, |v| Some(if v.0 < 3 { 10 } else { 20 }));
        assert_eq!(q.graph.n(), 2);
        assert_eq!(q.graph.m(), 1); // two bridge edges collapse into one
        assert_eq!(q.labels, vec![10, 20]);
        assert_eq!(q.vertex_of[5], Some(NodeId(1)));
        assert_eq!(q.graph.ident(NodeId(0)), 11);
    }

    #[test]
    fn quotient_drops_unlabeled() {
        let g = generators::path(4);
        let q = quotient(&g, |v| if v.0 == 0 { None } else { Some(v.0 as u64) });
        assert_eq!(q.graph.n(), 3);
        assert_eq!(q.graph.m(), 2);
        assert_eq!(q.vertex_of[0], None);
    }
}
