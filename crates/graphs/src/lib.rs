//! Graph substrate for the `awake` workspace.
//!
//! This crate provides the graph machinery every other crate builds on:
//!
//! * [`Graph`] — an immutable, CSR-backed simple undirected graph with
//!   contiguous [`NodeId`]s and an arbitrary per-node *identifier* space
//!   (the distributed algorithms in `awake-core` operate on identifiers,
//!   which the Sleeping-model papers draw from a polynomial range).
//! * [`GraphBuilder`] — validated construction (rejects self-loops,
//!   deduplicates parallel edges).
//! * [`generators`] — deterministic, seeded graph families used by the
//!   experiment harness: paths, cycles, grids, hypercubes, trees, random
//!   regular graphs, `G(n,p)`, power-law graphs, and adversarial gadgets.
//! * [`ops`] — induced subgraphs, the square `G²`, disjoint unions, and the
//!   quotient (cluster-contraction) operation that realizes the *virtual
//!   graphs* of Definitions 3 and 5 of the paper.
//! * [`traversal`] — BFS distances, connected components, diameter.
//! * [`orientation`] — acyclic edge orientations (the `µ` of the O-LOCAL
//!   class definition), topological orders, descendant closures.
//! * [`coloring`] — proper/distance-2 coloring checks and centralized
//!   reference algorithms.
//!
//! # Example
//!
//! ```
//! use awake_graphs::{generators, traversal};
//!
//! let g = generators::cycle(8);
//! assert_eq!(g.n(), 8);
//! assert_eq!(g.m(), 8);
//! assert_eq!(g.degree(awake_graphs::NodeId(0)), 2);
//! let dist = traversal::bfs_distances(&g, awake_graphs::NodeId(0));
//! assert_eq!(dist[4], Some(4));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
pub mod coloring;
mod dot;
pub mod generators;
mod graph;
pub mod ops;
pub mod orientation;
pub mod rng;
pub mod strategies;
pub mod traversal;

pub use builder::{BuildError, GraphBuilder};
pub use dot::to_dot;
pub use graph::{Graph, NodeId};
pub use orientation::AcyclicOrientation;
