//! Breadth-first traversals, components, and distance computations.

use crate::{Graph, NodeId};
use std::collections::VecDeque;

/// BFS distances from `source`; `None` for unreachable nodes.
///
/// # Example
/// ```
/// # use awake_graphs::{generators, traversal, NodeId};
/// let g = generators::path(4);
/// let d = traversal::bfs_distances(&g, NodeId(0));
/// assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3)]);
/// ```
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<Option<u32>> {
    multi_source_bfs(g, std::iter::once(source))
}

/// BFS distances from the nearest of several sources.
pub fn multi_source_bfs<I: IntoIterator<Item = NodeId>>(g: &Graph, sources: I) -> Vec<Option<u32>> {
    let mut dist = vec![None; g.n()];
    let mut q = VecDeque::new();
    for s in sources {
        if dist[s.index()].is_none() {
            dist[s.index()] = Some(0);
            q.push_back(s);
        }
    }
    while let Some(v) = q.pop_front() {
        let dv = dist[v.index()].expect("queued nodes have distances");
        for &w in g.neighbors(v) {
            if dist[w.index()].is_none() {
                dist[w.index()] = Some(dv + 1);
                q.push_back(w);
            }
        }
    }
    dist
}

/// BFS distances restricted to the subgraph induced by `member` (nodes for
/// which `member(v)` is true). `source` must be a member.
pub fn bfs_distances_within<F: Fn(NodeId) -> bool>(
    g: &Graph,
    source: NodeId,
    member: F,
) -> Vec<Option<u32>> {
    assert!(
        member(source),
        "source must satisfy the membership predicate"
    );
    let mut dist = vec![None; g.n()];
    dist[source.index()] = Some(0);
    let mut q = VecDeque::from([source]);
    while let Some(v) = q.pop_front() {
        let dv = dist[v.index()].expect("queued nodes have distances");
        for &w in g.neighbors(v) {
            if member(w) && dist[w.index()].is_none() {
                dist[w.index()] = Some(dv + 1);
                q.push_back(w);
            }
        }
    }
    dist
}

/// Result of [`connected_components`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    /// Component index of each node, in `0..count`.
    pub component: Vec<u32>,
    /// Number of components.
    pub count: usize,
}

impl Components {
    /// Nodes of component `c`.
    pub fn members(&self, c: u32) -> Vec<NodeId> {
        self.component
            .iter()
            .enumerate()
            .filter(|(_, &cc)| cc == c)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }
}

/// Connected components by repeated BFS.
pub fn connected_components(g: &Graph) -> Components {
    let mut component = vec![u32::MAX; g.n()];
    let mut count = 0u32;
    for s in g.nodes() {
        if component[s.index()] != u32::MAX {
            continue;
        }
        let mut q = VecDeque::from([s]);
        component[s.index()] = count;
        while let Some(v) = q.pop_front() {
            for &w in g.neighbors(v) {
                if component[w.index()] == u32::MAX {
                    component[w.index()] = count;
                    q.push_back(w);
                }
            }
        }
        count += 1;
    }
    Components {
        component,
        count: count as usize,
    }
}

/// Exact diameter (max eccentricity over the largest component); `0` for
/// graphs with ≤ 1 node. `O(n·m)` — intended for test-scale graphs.
pub fn diameter(g: &Graph) -> u32 {
    let mut best = 0;
    for v in g.nodes() {
        let d = bfs_distances(g, v);
        for dv in d.into_iter().flatten() {
            best = best.max(dv);
        }
    }
    best
}

/// Eccentricity of `v` within its component.
pub fn eccentricity(g: &Graph, v: NodeId) -> u32 {
    bfs_distances(g, v).into_iter().flatten().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn distances_on_cycle() {
        let g = generators::cycle(6);
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d[3], Some(3));
        assert_eq!(d[5], Some(1));
    }

    #[test]
    fn multi_source() {
        let g = generators::path(7);
        let d = multi_source_bfs(&g, [NodeId(0), NodeId(6)]);
        assert_eq!(d[3], Some(3));
        assert_eq!(d[5], Some(1));
    }

    #[test]
    fn within_subgraph() {
        // path 0-1-2-3-4; exclude node 2 -> 4 unreachable from 0.
        let g = generators::path(5);
        let d = bfs_distances_within(&g, NodeId(0), |v| v != NodeId(2));
        assert_eq!(d[1], Some(1));
        assert_eq!(d[4], None);
    }

    #[test]
    #[should_panic(expected = "membership")]
    fn within_requires_member_source() {
        let g = generators::path(3);
        let _ = bfs_distances_within(&g, NodeId(0), |v| v != NodeId(0));
    }

    #[test]
    fn components_and_members() {
        let mut b = crate::GraphBuilder::new(5);
        b.edge(0, 1).edge(2, 3);
        let g = b.build().unwrap();
        let cc = connected_components(&g);
        assert_eq!(cc.count, 3);
        assert_eq!(cc.component[0], cc.component[1]);
        assert_ne!(cc.component[0], cc.component[2]);
        assert_eq!(cc.members(cc.component[4]), vec![NodeId(4)]);
    }

    #[test]
    fn diameter_and_eccentricity() {
        let g = generators::path(10);
        assert_eq!(diameter(&g), 9);
        assert_eq!(eccentricity(&g, NodeId(5)), 5);
        assert_eq!(diameter(&generators::complete(5)), 1);
        assert_eq!(diameter(&crate::GraphBuilder::new(1).build().unwrap()), 0);
    }
}
