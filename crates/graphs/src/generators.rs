//! Deterministic, seeded graph family generators.
//!
//! All random generators take an explicit `seed` so that experiments are
//! reproducible; structured generators are fully deterministic.
//!
//! # Example
//! ```
//! use awake_graphs::generators;
//! let g = generators::gnp(100, 0.05, 7);
//! assert_eq!(g.n(), 100);
//! let h = generators::gnp(100, 0.05, 7);
//! assert_eq!(g, h); // same seed, same graph
//! ```

use crate::rng::Rng;
use crate::{Graph, GraphBuilder};

fn must(b: GraphBuilder) -> Graph {
    b.build().expect("generator produced invalid graph")
}

/// Path `P_n`: nodes `0 — 1 — … — n-1`.
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.edge(i as u32 - 1, i as u32);
    }
    must(b)
}

/// Cycle `C_n` (requires `n >= 3`; smaller `n` degrades to a path).
pub fn cycle(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.edge(i as u32 - 1, i as u32);
    }
    if n >= 3 {
        b.edge(n as u32 - 1, 0);
    }
    must(b)
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            b.edge(u, v);
        }
    }
    must(b)
}

/// Star `K_{1,n-1}` with the hub at node 0.
pub fn star(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n as u32 {
        b.edge(0, v);
    }
    must(b)
}

/// Complete bipartite graph `K_{a,b}`; the first `a` nodes form one side.
pub fn complete_bipartite(a: usize, b_size: usize) -> Graph {
    let mut b = GraphBuilder::new(a + b_size);
    for u in 0..a as u32 {
        for v in 0..b_size as u32 {
            b.edge(u, a as u32 + v);
        }
    }
    must(b)
}

/// `rows × cols` 2-D grid.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let idx = |r: usize, c: usize| (r * cols + c) as u32;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if r + 1 < rows {
                b.edge(idx(r, c), idx(r + 1, c));
            }
            if c + 1 < cols {
                b.edge(idx(r, c), idx(r, c + 1));
            }
        }
    }
    must(b)
}

/// `rows × cols` 2-D torus (grid with wraparound; both dims should be ≥ 3
/// for the full 4-regular shape — a dimension of 1 or 2 degrades to the
/// grid edges in that direction, since the wrap edge would be a self-loop
/// or a duplicate).
pub fn torus(rows: usize, cols: usize) -> Graph {
    let idx = |r: usize, c: usize| ((r % rows) * cols + (c % cols)) as u32;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let v = idx(r, c);
            if idx(r + 1, c) != v {
                b.edge(v, idx(r + 1, c));
            }
            if idx(r, c + 1) != v {
                b.edge(v, idx(r, c + 1));
            }
        }
    }
    must(b)
}

/// `d`-dimensional hypercube `Q_d` on `2^d` nodes.
pub fn hypercube(d: u32) -> Graph {
    let n = 1usize << d;
    let mut b = GraphBuilder::new(n);
    for v in 0..n as u32 {
        for bit in 0..d {
            let u = v ^ (1 << bit);
            if u > v {
                b.edge(v, u);
            }
        }
    }
    must(b)
}

/// Balanced `r`-ary rooted tree with `n` nodes (node 0 is the root;
/// node `v`'s parent is `(v-1)/r`).
pub fn balanced_tree(n: usize, r: usize) -> Graph {
    assert!(r >= 1, "arity must be >= 1");
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.edge(v as u32, ((v - 1) / r) as u32);
    }
    must(b)
}

/// Caterpillar: a spine path of `spine` nodes, each with `legs` pendant leaves.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    let n = spine + spine * legs;
    let mut b = GraphBuilder::new(n);
    for i in 1..spine {
        b.edge(i as u32 - 1, i as u32);
    }
    for s in 0..spine {
        for l in 0..legs {
            b.edge(s as u32, (spine + s * legs + l) as u32);
        }
    }
    must(b)
}

/// Barbell: two `K_k` cliques joined by a path of `bridge` extra nodes
/// (`k = 0` degrades to the bridge path alone).
pub fn barbell(k: usize, bridge: usize) -> Graph {
    if k == 0 {
        return path(bridge);
    }
    let n = 2 * k + bridge;
    let mut b = GraphBuilder::new(n);
    for u in 0..k as u32 {
        for v in (u + 1)..k as u32 {
            b.edge(u, v);
            b.edge(k as u32 + bridge as u32 + u, k as u32 + bridge as u32 + v);
        }
    }
    // path: clique1 node k-1 — bridge nodes — clique2 node 0
    let mut prev = (k - 1) as u32;
    for i in 0..bridge {
        let cur = (k + i) as u32;
        b.edge(prev, cur);
        prev = cur;
    }
    b.edge(prev, (k + bridge) as u32);
    must(b)
}

/// Lollipop: a `K_k` clique with a tail path of `tail` nodes (`k = 0`
/// degrades to the tail path alone).
pub fn lollipop(k: usize, tail: usize) -> Graph {
    if k == 0 {
        return path(tail);
    }
    let mut b = GraphBuilder::new(k + tail);
    for u in 0..k as u32 {
        for v in (u + 1)..k as u32 {
            b.edge(u, v);
        }
    }
    let mut prev = (k - 1) as u32;
    for i in 0..tail {
        let cur = (k + i) as u32;
        b.edge(prev, cur);
        prev = cur;
    }
    must(b)
}

/// Random labeled tree on `n` nodes (uniform random attachment).
pub fn random_tree(n: usize, seed: u64) -> Graph {
    let mut rng = Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        let p = rng.gen_range(0..v);
        b.edge(v as u32, p as u32);
    }
    must(b)
}

/// Erdős–Rényi `G(n, p)`.
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut rng = Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if rng.gen_bool(p) {
                b.edge(u, v);
            }
        }
    }
    must(b)
}

/// Erdős–Rényi `G(n, p)` by geometric edge skipping (Batagelj–Brandes) —
/// expected `O(n + m)` instead of [`gnp`]'s `O(n²)` pairwise scan, which
/// makes million-node sparse graphs practical.
///
/// Samples the same distribution as [`gnp`] but consumes the RNG stream
/// differently, so `gnp_sparse(n, p, s)` and `gnp(n, p, s)` are different
/// (equally distributed) graphs; seeded streams of each are stable.
/// `p = 1` yields the complete graph, like [`gnp`].
pub fn gnp_sparse(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    // The skip walk casts endpoints to u32 when emitting edges; assert the
    // id space up front (GraphBuilder::new re-checks) rather than letting
    // `as u32` truncate silently.
    assert!(
        n <= u32::MAX as usize,
        "n = {n} exceeds the u32 node-id space"
    );
    if p >= 1.0 {
        return complete(n);
    }
    let mut rng = Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    if n >= 2 && p > 0.0 {
        let ln_q = (1.0 - p).ln();
        // Walk the lower triangle (v > w) with geometric skips: each jump
        // lands on the next sampled edge directly.
        let mut v: usize = 1;
        let mut w: i64 = -1;
        while v < n {
            let r = rng.gen_f64();
            // skip ~ Geometric(p): number of non-edges before the next edge
            let skip = ((1.0 - r).ln() / ln_q).floor();
            w += 1 + skip.min((n * n) as f64) as i64;
            while w >= v as i64 && v < n {
                w -= v as i64;
                v += 1;
            }
            if v < n {
                b.edge(w as u32, v as u32);
            }
        }
    }
    must(b)
}

/// Random `d`-regular-ish graph by the configuration model with rejection of
/// loops/multi-edges; vertices may end up with degree slightly below `d`
/// when rejections exhaust the stub pool. `n*d` should be even.
pub fn random_regular(n: usize, d: usize, seed: u64) -> Graph {
    assert!(n == 0 || d < n, "degree must be < n");
    let mut rng = Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    let mut seen = std::collections::HashSet::new();
    let mut stubs: Vec<u32> = (0..n as u32)
        .flat_map(|v| std::iter::repeat_n(v, d))
        .collect();
    rng.shuffle(&mut stubs);
    // Greedy pairing with bounded retries: swap a conflicting partner with a
    // random later stub. Falls back to dropping the pair.
    let key = |u: u32, v: u32| if u < v { (u, v) } else { (v, u) };
    let mut i = 0;
    while i + 1 < stubs.len() {
        let mut tries = 0;
        while (stubs[i] == stubs[i + 1] || seen.contains(&key(stubs[i], stubs[i + 1])))
            && tries < 50
        {
            let j = rng.gen_range(i + 1..stubs.len());
            stubs.swap(i + 1, j);
            tries += 1;
        }
        if stubs[i] != stubs[i + 1] && seen.insert(key(stubs[i], stubs[i + 1])) {
            b.edge(stubs[i], stubs[i + 1]);
        }
        i += 2;
    }
    must(b)
}

/// Chung–Lu style power-law graph: node `v` has weight `(v+1)^{-1/(β-1)}`
/// scaled so the expected average degree is `avg_deg`.
pub fn power_law(n: usize, beta: f64, avg_deg: f64, seed: u64) -> Graph {
    assert!(beta > 2.0, "beta must be > 2 for finite mean");
    let mut rng = Rng::seed_from_u64(seed);
    let exp = -1.0 / (beta - 1.0);
    let w: Vec<f64> = (0..n).map(|v| ((v + 1) as f64).powf(exp)).collect();
    let sum: f64 = w.iter().sum();
    let scale = avg_deg * n as f64 / sum;
    let w: Vec<f64> = w.into_iter().map(|x| x * scale).collect();
    let total: f64 = w.iter().sum();
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let p = (w[u] * w[v] / total).min(1.0);
            if rng.gen_bool(p) {
                b.edge(u as u32, v as u32);
            }
        }
    }
    must(b)
}

/// Random graph with max degree ~`target_delta`: starts from a Hamiltonian
/// path (connectivity) and adds random edges while respecting the cap.
///
/// Used by the crossover experiment (E2) to sweep Δ at fixed `n`.
pub fn random_with_max_degree(n: usize, target_delta: usize, seed: u64) -> Graph {
    assert!(target_delta >= 2, "need Δ >= 2");
    let mut rng = Rng::seed_from_u64(seed);
    let mut deg = vec![0usize; n];
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.edge(i as u32 - 1, i as u32);
        deg[i - 1] += 1;
        deg[i] += 1;
    }
    let budget = n * target_delta / 2;
    let mut added = 0;
    let mut attempts = 0;
    while added < budget && attempts < budget * 20 {
        attempts += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v || deg[u] >= target_delta || deg[v] >= target_delta {
            continue;
        }
        let before = b.edge_count();
        b.edge(u as u32, v as u32);
        if b.edge_count() > before {
            deg[u] += 1;
            deg[v] += 1;
            added += 1;
        }
    }
    must(b)
}

/// "Cluster gadget": `k` cliques of size `s` arranged in a cycle, adjacent
/// cliques connected by a single bridge edge. Stresses the clustering
/// pipeline with dense clusters and sparse inter-cluster structure.
pub fn clique_cycle(k: usize, s: usize) -> Graph {
    assert!(k >= 1 && s >= 1);
    let n = k * s;
    let mut b = GraphBuilder::new(n);
    for c in 0..k {
        let base = (c * s) as u32;
        for u in 0..s as u32 {
            for v in (u + 1)..s as u32 {
                b.edge(base + u, base + v);
            }
        }
        if k >= 2 {
            let next = (((c + 1) % k) * s) as u32;
            // On k = 2 the "cycle" is a single bridge; add it once.
            if c + 1 < k || k > 2 {
                b.edge(base + (s as u32 - 1), next);
            }
        }
    }
    must(b)
}

/// The `n`-node path with the *alternating* (anti-monotone) structure used in
/// §2.2 of the paper to show distance-2 coloring is not O-LOCAL: identifiers
/// are assigned via `idents` so tests can choose adversarial placements.
pub fn alternating_path(n: usize, idents: Vec<u64>) -> Graph {
    let g = path(n);
    g.with_idents(idents)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal;

    #[test]
    fn path_and_cycle_shapes() {
        let p = path(5);
        assert_eq!(p.m(), 4);
        assert_eq!(p.max_degree(), 2);
        let c = cycle(5);
        assert_eq!(c.m(), 5);
        assert!(c.has_edge(crate::NodeId(4), crate::NodeId(0)));
    }

    #[test]
    fn complete_star_bipartite() {
        assert_eq!(complete(6).m(), 15);
        assert_eq!(star(7).max_degree(), 6);
        let kb = complete_bipartite(3, 4);
        assert_eq!(kb.m(), 12);
        assert_eq!(kb.max_degree(), 4);
    }

    #[test]
    fn grid_torus_hypercube() {
        let g = grid(3, 4);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4);
        let t = torus(4, 4);
        assert!(t.nodes().all(|v| t.degree(v) == 4));
        let h = hypercube(4);
        assert!(h.nodes().all(|v| h.degree(v) == 4));
        assert_eq!(h.n(), 16);
    }

    #[test]
    fn trees_are_connected_and_acyclic() {
        for (g, n) in [
            (balanced_tree(17, 3), 17),
            (random_tree(40, 3), 40),
            (caterpillar(5, 3), 20),
        ] {
            assert_eq!(g.n(), n);
            assert_eq!(g.m(), n - 1);
            assert_eq!(traversal::connected_components(&g).count, 1);
        }
    }

    #[test]
    fn barbell_lollipop() {
        let bb = barbell(4, 2);
        assert_eq!(bb.n(), 10);
        assert_eq!(traversal::connected_components(&bb).count, 1);
        let lp = lollipop(5, 3);
        assert_eq!(lp.n(), 8);
        // the clique node carrying the tail has degree 4 (clique) + 1 (tail)
        assert_eq!(lp.max_degree(), 5);
    }

    #[test]
    fn gnp_determinism_and_bounds() {
        let a = gnp(60, 0.1, 5);
        let b = gnp(60, 0.1, 5);
        assert_eq!(a, b);
        let c = gnp(60, 0.1, 6);
        assert_ne!(a, c); // overwhelmingly likely
        assert_eq!(gnp(10, 0.0, 1).m(), 0);
        assert_eq!(gnp(10, 1.0, 1).m(), 45);
    }

    #[test]
    fn gnp_sparse_matches_expected_density() {
        let a = gnp_sparse(4000, 0.002, 5);
        let b = gnp_sparse(4000, 0.002, 5);
        assert_eq!(a, b, "seeded streams are stable");
        assert_ne!(a, gnp_sparse(4000, 0.002, 6));
        // E[m] = p * n(n-1)/2 ≈ 15 996; a 4-sigma band is ~±506
        let m = a.m();
        assert!((15_400..16_600).contains(&m), "m = {m}");
        assert_eq!(gnp_sparse(100, 0.0, 1).m(), 0);
        assert_eq!(gnp_sparse(1, 0.5, 1).m(), 0);
        assert_eq!(gnp_sparse(10, 1.0, 1).m(), 45, "p = 1 is K_n, like gnp");
        // simple-graph invariants hold (builder would reject violations)
        assert!(a.nodes().all(|v| !a.has_edge(v, v)));
    }

    #[test]
    fn gnp_sparse_scales_to_large_n() {
        // The point of the generator: a 200k-node sparse graph in O(n + m).
        let n = 200_000;
        let p = 6.0 / (n - 1) as f64;
        let g = gnp_sparse(n, p, 11);
        assert_eq!(g.n(), n);
        let avg = 2.0 * g.m() as f64 / n as f64;
        assert!((5.5..6.5).contains(&avg), "avg degree {avg}");
    }

    #[test]
    fn random_regular_degree_cap() {
        let g = random_regular(50, 6, 11);
        assert!(g.nodes().all(|v| g.degree(v) <= 6));
        let total: usize = g.nodes().map(|v| g.degree(v)).sum();
        assert!(
            total >= 50 * 6 * 8 / 10,
            "should be near-regular, got {total}"
        );
    }

    #[test]
    fn max_degree_generator_respects_cap() {
        let g = random_with_max_degree(80, 9, 3);
        assert!(g.max_degree() <= 9);
        assert!(g.max_degree() >= 5, "should get close to target");
        assert_eq!(traversal::connected_components(&g).count, 1);
    }

    #[test]
    fn power_law_has_skewed_degrees() {
        let g = power_law(120, 2.5, 4.0, 9);
        let dmax = g.max_degree();
        let davg = 2.0 * g.m() as f64 / g.n() as f64;
        assert!(dmax as f64 > 2.0 * davg, "Δ={dmax} avg={davg}");
    }

    #[test]
    fn clique_cycle_shape() {
        let g = clique_cycle(4, 5);
        assert_eq!(g.n(), 20);
        assert_eq!(traversal::connected_components(&g).count, 1);
        // every node participates in its clique
        assert!(g.nodes().all(|v| g.degree(v) >= 4));
    }

    /// Every generator at its degenerate corner: `n ∈ {0, 1, 2}` and, for
    /// the random families, `p ∈ {0.0, 1e-12, 1.0}`. None may panic,
    /// hang, or emit an invalid graph (`must` would catch self-loops /
    /// out-of-range endpoints via the builder).
    #[test]
    fn degenerate_parameters_build_valid_graphs() {
        for n in [0usize, 1, 2] {
            assert_eq!(path(n).n(), n);
            assert_eq!(cycle(n).n(), n);
            assert_eq!(complete(n).n(), n);
            assert_eq!(star(n).n(), n);
            assert_eq!(balanced_tree(n, 1).n(), n);
            assert_eq!(balanced_tree(n, 2).n(), n);
            assert_eq!(random_tree(n, 1).n(), n);
            assert_eq!(caterpillar(n, 0).n(), n);
            assert_eq!(caterpillar(n, 2).n(), n * 3);
            assert_eq!(random_with_max_degree(n, 2, 1).n(), n);
            for m in [0usize, 1, 2] {
                assert_eq!(grid(n, m).n(), n * m);
                assert_eq!(torus(n, m).n(), n * m);
                assert_eq!(complete_bipartite(n, m).n(), n + m);
                assert_eq!(barbell(n, m).n(), if n == 0 { m } else { 2 * n + m });
                assert_eq!(lollipop(n, m).n(), if n == 0 { m } else { n + m });
            }
            for p in [0.0f64, 1e-12, 1.0] {
                let g = gnp(n, p, 1);
                assert_eq!(g.n(), n);
                let s = gnp_sparse(n, p, 1);
                assert_eq!(s.n(), n);
                if p == 1.0 && n == 2 {
                    assert_eq!(g.m(), 1);
                    assert_eq!(s.m(), 1);
                }
                if p == 0.0 {
                    assert_eq!(g.m(), 0);
                    assert_eq!(s.m(), 0);
                }
            }
            if n > 0 {
                assert_eq!(random_regular(n, 0, 1).m(), 0);
            }
            assert_eq!(power_law(n, 2.5, 1.0, 1).n(), n);
        }
        // n = 0 corners that used to panic (d < n underflow-style assert,
        // k = 0 clique index underflow):
        assert_eq!(random_regular(0, 0, 1).n(), 0);
        assert_eq!(barbell(0, 0).n(), 0);
        assert_eq!(lollipop(0, 0).n(), 0);
        assert_eq!(random_regular(2, 1, 1).n(), 2);
        // tiny tori no longer self-loop on the wrap edges
        assert_eq!(torus(1, 3).m(), 3); // a 3-cycle
        assert_eq!(torus(2, 2).m(), 4); // C_4, wrap edges collapse
        assert_eq!(hypercube(0).n(), 1);
        assert_eq!(hypercube(1).m(), 1);
        assert_eq!(clique_cycle(1, 1).n(), 1);
        assert_eq!(clique_cycle(2, 1).m(), 1);
    }

    #[test]
    fn gnp_sparse_tiny_p_terminates_and_is_sparse() {
        // p = 1e-12 once made the geometric skip enormous; the capped jump
        // must terminate and produce an (almost surely) empty graph.
        let g = gnp_sparse(4096, 1e-12, 3);
        assert_eq!(g.n(), 4096);
        assert!(g.m() <= 1, "m = {}", g.m());
        let h = gnp(64, 1e-12, 3);
        assert_eq!(h.m(), 0);
    }

    #[test]
    #[should_panic(expected = "u32 node-id space")]
    fn builder_rejects_n_beyond_u32() {
        let _ = crate::GraphBuilder::new(u32::MAX as usize + 1);
    }

    #[test]
    #[should_panic(expected = "u32 node-id space")]
    fn gnp_sparse_rejects_n_beyond_u32() {
        let _ = gnp_sparse(u32::MAX as usize + 2, 1e-9, 1);
    }

    #[test]
    fn alternating_path_custom_ids() {
        let g = alternating_path(4, vec![9, 2, 7, 4]);
        assert_eq!(g.ident(crate::NodeId(0)), 9);
        assert_eq!(g.m(), 3);
    }
}
