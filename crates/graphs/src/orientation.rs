//! Acyclic edge orientations — the `µ` of the O-LOCAL class definition.
//!
//! The paper defines O-LOCAL problems relative to an *arbitrary acyclic
//! orientation* of the edges of `G` (§2.2). We represent orientations by a
//! per-node *priority*: the edge `{u, v}` is oriented from the higher
//! priority endpoint to the lower one, with ties broken by node identifier
//! (higher ident → lower ident). Any such orientation is acyclic since
//! `(priority, ident)` is a strict potential, and conversely every acyclic
//! orientation arises from a topological numbering, so this representation
//! is fully general.

use crate::{Graph, NodeId};

/// An acyclic orientation of a graph's edges.
///
/// The edge `{u, v}` points **from** the endpoint with the lexicographically
/// larger `(priority, ident)` pair **to** the smaller. "Out-neighbors" of
/// `v` are the targets of `v`'s outgoing edges; in the greedy process a node
/// may be processed only after all its out-neighbors (its *descendants*,
/// following outgoing edges).
///
/// # Example
/// ```
/// # use awake_graphs::{generators, AcyclicOrientation, NodeId};
/// let g = generators::path(3);
/// // Orient by identifier only (all priorities equal): edges point from
/// // higher ident to lower, so v2 -> v1 -> v0.
/// let mu = AcyclicOrientation::by_ident(&g);
/// assert_eq!(mu.out_neighbors(&g, NodeId(2)), vec![NodeId(1)]);
/// assert_eq!(mu.out_degree(&g, NodeId(0)), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcyclicOrientation {
    priority: Vec<u64>,
    ident: Vec<u64>,
}

impl AcyclicOrientation {
    /// Orientation from an explicit priority vector (ties by identifier).
    ///
    /// # Panics
    /// Panics if `priority.len() != g.n()`.
    pub fn from_priorities(g: &Graph, priority: Vec<u64>) -> Self {
        assert_eq!(priority.len(), g.n(), "priority vector length mismatch");
        AcyclicOrientation {
            priority,
            ident: g.nodes().map(|v| g.ident(v)).collect(),
        }
    }

    /// The identifier orientation: higher ident → lower ident.
    pub fn by_ident(g: &Graph) -> Self {
        Self::from_priorities(g, vec![0; g.n()])
    }

    /// Orientation induced by a coloring: higher color → lower color
    /// (exactly the orientation Lemma 11 derives from a proper coloring).
    pub fn by_coloring(g: &Graph, colors: &[u64]) -> Self {
        Self::from_priorities(g, colors.to_vec())
    }

    /// Random acyclic orientation: priorities are a random permutation.
    pub fn random(g: &Graph, seed: u64) -> Self {
        let mut perm: Vec<u64> = (0..g.n() as u64).collect();
        crate::rng::Rng::seed_from_u64(seed).shuffle(&mut perm);
        Self::from_priorities(g, perm)
    }

    /// The comparable key of a node.
    #[inline]
    pub fn key(&self, v: NodeId) -> (u64, u64) {
        (self.priority[v.index()], self.ident[v.index()])
    }

    /// Does the edge `{u, v}` point from `u` to `v`?
    #[inline]
    pub fn points(&self, u: NodeId, v: NodeId) -> bool {
        self.key(u) > self.key(v)
    }

    /// Out-neighbors of `v` (edge targets).
    pub fn out_neighbors(&self, g: &Graph, v: NodeId) -> Vec<NodeId> {
        g.neighbors(v)
            .iter()
            .copied()
            .filter(|&u| self.points(v, u))
            .collect()
    }

    /// In-neighbors of `v` (edge sources).
    pub fn in_neighbors(&self, g: &Graph, v: NodeId) -> Vec<NodeId> {
        g.neighbors(v)
            .iter()
            .copied()
            .filter(|&u| self.points(u, v))
            .collect()
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, g: &Graph, v: NodeId) -> usize {
        g.neighbors(v)
            .iter()
            .filter(|&&u| self.points(v, u))
            .count()
    }

    /// A topological order: sinks first (every node appears after all of its
    /// out-neighbors), i.e. a valid greedy processing order.
    pub fn topological_order(&self, g: &Graph) -> Vec<NodeId> {
        let mut order: Vec<NodeId> = g.nodes().collect();
        order.sort_by_key(|&v| self.key(v));
        order
    }

    /// The descendant closure `Gµ(v) ∖ {v}`: all nodes reachable from `v`
    /// by following outgoing edges.
    pub fn descendants(&self, g: &Graph, v: NodeId) -> Vec<NodeId> {
        let mut seen = vec![false; g.n()];
        let mut stack = vec![v];
        seen[v.index()] = true;
        let mut out = Vec::new();
        while let Some(x) = stack.pop() {
            for &w in g.neighbors(x) {
                if self.points(x, w) && !seen[w.index()] {
                    seen[w.index()] = true;
                    out.push(w);
                    stack.push(w);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Verify acyclicity explicitly (always true by construction; used by
    /// property tests as a sanity check of the representation).
    pub fn is_acyclic(&self, g: &Graph) -> bool {
        // Follow any outgoing edge: keys strictly decrease, so no cycle.
        g.edges().all(|(u, v)| self.key(u) != self.key(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn ident_orientation_on_path() {
        let g = generators::path(4);
        let mu = AcyclicOrientation::by_ident(&g);
        assert!(mu.points(NodeId(3), NodeId(2)));
        assert_eq!(mu.out_degree(&g, NodeId(0)), 0);
        assert_eq!(mu.in_neighbors(&g, NodeId(0)), vec![NodeId(1)]);
        assert_eq!(
            mu.topological_order(&g),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
    }

    #[test]
    fn coloring_orientation_breaks_ties_by_ident() {
        let g = generators::path(3);
        // colors: v0=1, v1=0, v2=1  => v0 -> v1 <- v2; v0 vs v2 not adjacent.
        let mu = AcyclicOrientation::by_coloring(&g, &[1, 0, 1]);
        assert!(mu.points(NodeId(0), NodeId(1)));
        assert!(mu.points(NodeId(2), NodeId(1)));
        assert_eq!(mu.out_degree(&g, NodeId(1)), 0);
    }

    #[test]
    fn descendants_closure() {
        let g = generators::path(5);
        let mu = AcyclicOrientation::by_ident(&g);
        assert_eq!(
            mu.descendants(&g, NodeId(3)),
            vec![NodeId(0), NodeId(1), NodeId(2)]
        );
        assert!(mu.descendants(&g, NodeId(0)).is_empty());
    }

    #[test]
    fn random_orientations_are_acyclic() {
        let g = generators::gnp(40, 0.2, 3);
        for seed in 0..5 {
            let mu = AcyclicOrientation::random(&g, seed);
            assert!(mu.is_acyclic(&g));
            // Check the topological order is consistent with edges.
            let order = mu.topological_order(&g);
            let mut pos = vec![0usize; g.n()];
            for (i, &v) in order.iter().enumerate() {
                pos[v.index()] = i;
            }
            for (u, v) in g.edges() {
                let (src, dst) = if mu.points(u, v) { (u, v) } else { (v, u) };
                assert!(pos[dst.index()] < pos[src.index()]);
            }
        }
    }

    #[test]
    fn out_plus_in_equals_degree() {
        let g = generators::gnp(30, 0.3, 9);
        let mu = AcyclicOrientation::random(&g, 1);
        for v in g.nodes() {
            assert_eq!(
                mu.out_degree(&g, v) + mu.in_neighbors(&g, v).len(),
                g.degree(v)
            );
        }
    }
}
