//! Seeded random-graph samplers for property-style tests.
//!
//! The workspace has no external property-testing dependency, so these
//! samplers play the role proptest strategies would: a seeded [`Rng`] draws
//! graphs from a diverse mix of families, and test loops iterate over many
//! seeds. Failures reproduce exactly from the printed seed.
//!
//! ```
//! use awake_graphs::rng::Rng;
//! use awake_graphs::strategies::any_graph;
//!
//! for case in 0..32 {
//!     let g = any_graph(&mut Rng::seed_from_u64(case), 24);
//!     assert_eq!(g.degree_sum(), 2 * g.m(), "case {case}");
//! }
//! ```

use crate::rng::Rng;
use crate::{generators, Graph};

/// Any simple graph with up to `max_n` nodes, drawn from a mix of families.
pub fn any_graph(rng: &mut Rng, max_n: usize) -> Graph {
    let max_n = max_n.max(4);
    match rng.bounded_u64(7) {
        0 => generators::path(rng.gen_range(1..max_n + 1)),
        1 => generators::cycle(rng.gen_range(3..max_n + 1)),
        2 => generators::complete(rng.gen_range(1..max_n.min(12) + 1)),
        3 => generators::star(rng.gen_range(2..max_n + 1)),
        4 => generators::random_tree(rng.gen_range(2..max_n + 1), rng.next_u64()),
        5 => {
            let n = rng.gen_range(4..max_n + 1);
            let p = 0.02 + rng.gen_f64() * 0.58;
            generators::gnp(n, p, rng.next_u64())
        }
        _ => {
            let r = rng.gen_range(2..max_n / 2 + 1);
            let n = rng.gen_range(r * 2..r * 3 + 1);
            generators::balanced_tree(n, r)
        }
    }
}

/// Any *connected* graph with up to `max_n` nodes (resamples until connected).
pub fn connected_graph(rng: &mut Rng, max_n: usize) -> Graph {
    loop {
        let g = any_graph(rng, max_n);
        if g.n() > 0 && crate::traversal::connected_components(&g).count == 1 {
            return g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategies_produce_valid_graphs() {
        for case in 0..64 {
            let g = any_graph(&mut Rng::seed_from_u64(case), 20);
            // neighbors sorted, no self loops
            for v in g.nodes() {
                let nb = g.neighbors(v);
                assert!(nb.windows(2).all(|w| w[0] < w[1]), "case {case}");
                assert!(!nb.contains(&v), "case {case}");
            }
        }
    }

    #[test]
    fn connected_strategy_is_connected() {
        for case in 0..64 {
            let g = connected_graph(&mut Rng::seed_from_u64(1000 + case), 16);
            assert_eq!(
                crate::traversal::connected_components(&g).count,
                1,
                "case {case}"
            );
        }
    }
}
