//! Proptest strategies for random graphs (feature `strategies`).
//!
//! These strategies let downstream crates property-test invariants over a
//! diverse sample of graphs:
//!
//! ```
//! use proptest::prelude::*;
//! use awake_graphs::strategies::any_graph;
//!
//! proptest! {
//!     #[test]
//!     fn degree_sum_is_twice_m(g in any_graph(24)) {
//!         prop_assert_eq!(g.degree_sum(), 2 * g.m());
//!     }
//! }
//! ```

use crate::{generators, Graph};
use proptest::prelude::*;

/// Any simple graph with up to `max_n` nodes, drawn from a mix of families.
pub fn any_graph(max_n: usize) -> BoxedStrategy<Graph> {
    let max_n = max_n.max(4);
    prop_oneof![
        (1..=max_n).prop_map(generators::path),
        (3..=max_n).prop_map(generators::cycle),
        (1..=max_n.min(12)).prop_map(generators::complete),
        (2..=max_n).prop_map(generators::star),
        ((2..=max_n), any::<u64>()).prop_map(|(n, s)| generators::random_tree(n, s)),
        ((4..=max_n), (0.02f64..0.6), any::<u64>()).prop_map(|(n, p, s)| generators::gnp(n, p, s)),
        ((2..=max_n / 2).prop_flat_map(|r| ((r * 2..=r * 3), Just(r))))
            .prop_map(|(n, r)| generators::balanced_tree(n, r)),
    ]
    .boxed()
}

/// Any *connected* graph with up to `max_n` nodes.
pub fn connected_graph(max_n: usize) -> BoxedStrategy<Graph> {
    any_graph(max_n)
        .prop_filter("connected", |g| {
            g.n() > 0 && crate::traversal::connected_components(g).count == 1
        })
        .boxed()
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn strategies_produce_valid_graphs(g in any_graph(20)) {
            // neighbors sorted, no self loops
            for v in g.nodes() {
                let nb = g.neighbors(v);
                prop_assert!(nb.windows(2).all(|w| w[0] < w[1]));
                prop_assert!(!nb.contains(&v));
            }
        }

        #[test]
        fn connected_strategy_is_connected(g in connected_graph(16)) {
            prop_assert_eq!(crate::traversal::connected_components(&g).count, 1);
        }
    }
}
