//! A small, fast, fully deterministic PRNG for seeded generators and tests.
//!
//! The workspace builds without external crates, so this module stands in
//! for `rand`: xoshiro256** (Blackman–Vigna) seeded through SplitMix64.
//! Streams are stable across platforms and releases — generated graphs are
//! part of the experiment artifacts, so the sequence is a compatibility
//! surface. Do not change the algorithm.
//!
//! # Example
//! ```
//! use awake_graphs::rng::Rng;
//! let mut a = Rng::seed_from_u64(7);
//! let mut b = Rng::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
//! ```

/// xoshiro256** seeded via SplitMix64.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Deterministic seeding: four SplitMix64 outputs initialize the state.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        Rng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, bound)` by rejection sampling (unbiased).
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn bounded_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Lemire-style threshold rejection keeps the distribution exact.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            if x >= threshold {
                return x % bound;
            }
        }
    }

    /// Uniform `usize` in `range` (half-open).
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        range.start + self.bounded_u64((range.end - range.start) as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded_u64(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn bounded_is_in_range_and_covers() {
        let mut r = Rng::seed_from_u64(1);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.bounded_u64(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit");
        for _ in 0..100 {
            let v = r.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes_and_plausible_mean() {
        let mut r = Rng::seed_from_u64(2);
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(0.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "overwhelmingly likely to move something");
    }
}
