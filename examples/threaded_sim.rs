//! Run the same Sleeping-model workload on the serial skip-ahead engine
//! and the persistent worker-pool executor, and verify they agree bit for
//! bit — outputs, metrics, and the resulting suite report alike.
//!
//! A thin front-end over the `awake-lab` scenario harness: the `executors`
//! preset pairs every problem with a serial and an 8-worker scenario on
//! the same `G(n, p)` instance. The harness rows compare the summary
//! metrics; the direct pass below re-runs both executors on the same graph
//! and compares the raw per-node outputs and full `Metrics`.
//!
//! ```sh
//! cargo run --release --example threaded_sim
//! ```

use awake::core::trivial::TrivialGreedy;
use awake::graphs::Graph;
use awake::olocal::problems::{
    DegreePlusOneListColoring, DeltaPlusOneColoring, MaximalIndependentSet, MinimalVertexCover,
};
use awake::olocal::OLocalProblem;
use awake::sleeping::{threaded, Config, Engine};
use awake_lab::runner::Runner;
use awake_lab::scenario::presets;

const WORKERS: usize = 8;

/// Run `problem` on both executors and assert raw outputs *and* full
/// metrics are identical — stronger than the summary-metric comparison the
/// harness rows allow.
fn assert_outputs_agree<P>(problem: &P, g: &Graph)
where
    P: OLocalProblem + Clone + Send + Sync,
    P::Input: Clone,
{
    let inputs = problem.trivial_inputs(g);
    let mk = || -> Vec<TrivialGreedy<P>> {
        g.nodes()
            .map(|v| TrivialGreedy::new(problem.clone(), inputs[v.index()].clone()))
            .collect()
    };
    let serial = Engine::new(g, Config::default()).run(mk()).unwrap();
    let par = threaded::run_threaded(g, mk(), Config::default(), WORKERS).unwrap();
    assert_eq!(serial.outputs, par.outputs, "per-node outputs diverge");
    assert_eq!(serial.metrics, par.metrics, "metrics diverge");
}

fn main() {
    let scenarios = presets::by_name("executors").expect("executors preset exists");
    let suite_seed = 11;
    let report = Runner::serial()
        .run("executors", &scenarios, suite_seed)
        .expect("suite runs");
    print!("{}", report.text_table());

    // Scenario pairs (serial, threaded) share a graph family — and hence a
    // graph instance — so their deterministic metrics must be identical.
    for pair in report.scenarios.chunks(2) {
        let [serial, threaded] = pair else {
            unreachable!("executors preset pairs scenarios")
        };
        assert_eq!(serial.problem, threaded.problem);
        assert_eq!(
            serial.metrics, threaded.metrics,
            "executors disagree on {}",
            serial.problem
        );
        assert!(serial.valid && threaded.valid);
    }

    // Direct pass on the same graph instance the suite used: raw outputs
    // and full metrics, not just the report summary.
    let g = scenarios[0].family.build(scenarios[0].seed(suite_seed));
    assert_outputs_agree(&DeltaPlusOneColoring, &g);
    assert_outputs_agree(&DegreePlusOneListColoring, &g);
    assert_outputs_agree(&MaximalIndependentSet, &g);
    assert_outputs_agree(&MinimalVertexCover, &g);

    println!(
        "\nall {} problems: serial and {WORKERS}-worker executors agree bit for bit \
         (outputs and metrics) ✓",
        report.scenarios.len() / 2
    );
}
