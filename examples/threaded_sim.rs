//! Run the same Sleeping-model program on the serial skip-ahead engine and
//! the persistent worker-pool executor, and verify they agree bit for bit
//! — outputs and metrics alike.
//!
//! ```sh
//! cargo run --release --example threaded_sim
//! ```

use awake::core::trivial::TrivialGreedy;
use awake::graphs::generators;
use awake::olocal::problems::DeltaPlusOneColoring;
use awake::olocal::OLocalProblem;
use awake::sleeping::{threaded, Config, Engine};

fn main() {
    let g = generators::gnp(300, 0.05, 11);
    let p = DeltaPlusOneColoring;
    let mk = || -> Vec<TrivialGreedy<DeltaPlusOneColoring>> {
        g.nodes().map(|_| TrivialGreedy::new(p, ())).collect()
    };

    let t0 = std::time::Instant::now();
    let serial = Engine::new(&g, Config::default()).run(mk()).unwrap();
    let serial_time = t0.elapsed();

    let t0 = std::time::Instant::now();
    let par = threaded::run_threaded(&g, mk(), Config::default(), 8).unwrap();
    let par_time = t0.elapsed();

    p.validate(&g, &vec![(); g.n()], &serial.outputs).unwrap();
    assert_eq!(serial.outputs, par.outputs, "executors must agree");
    assert_eq!(serial.metrics, par.metrics, "metrics agree bit for bit");

    println!("graph: {g:?}");
    println!(
        "serial engine:   {:?} — awake {}, rounds {}",
        serial_time,
        serial.metrics.max_awake(),
        serial.metrics.rounds
    );
    println!(
        "threaded (8 wk): {:?} — identical outputs, metrics agree ✓",
        par_time
    );
}
