//! Edge problems via line-graph virtualization: maximal matching and
//! (2Δ−1)-edge coloring on every registered graph family, on both the
//! serial engine and the worker-pool executor.
//!
//! A thin front-end over the `awake-lab` scenario harness (`edges`
//! preset), plus a direct pass that re-runs one graph through the adapter
//! and checks the distributed outputs against the sequential edge greedy
//! — the class-defining reference — edge by edge.
//!
//! ```sh
//! cargo run --release --example edge_problems
//! ```

use awake::core::linegraph;
use awake::graphs::generators;
use awake::olocal::edge::{solve_edges_sequentially, EdgeColoring, EdgeIndex, MaximalMatching};
use awake::olocal::EdgeProblem;
use awake::sleeping::Config;
use awake_lab::runner::Runner;
use awake_lab::scenario::presets;

fn main() {
    // 1. The harness view: the full `edges` preset, sharded.
    let scenarios = presets::by_name("edges").expect("edges preset exists");
    let report = Runner::sharded(4)
        .run("edges", &scenarios, 11)
        .expect("edges suite runs");
    print!("{}", report.text_table());
    assert!(
        report.scenarios.iter().all(|s| s.valid),
        "every edge scenario must validate"
    );

    // Serial/threaded scenario pairs share a graph instance, so their
    // deterministic metrics must agree row for row.
    for pair in report.scenarios.chunks(2) {
        let [serial, threaded] = pair else {
            unreachable!("edges preset pairs scenarios")
        };
        assert_eq!(
            serial.metrics, threaded.metrics,
            "executor pair disagrees: {} vs {}",
            serial.name, threaded.name
        );
    }

    // 2. The direct view: one graph, adapter vs sequential reference.
    let g = generators::gnp(96, 0.07, 5);
    let idx = EdgeIndex::new(&g);
    println!(
        "\ndirect check: G(n={}, m={}), line graph on {} virtual nodes",
        g.n(),
        g.m(),
        idx.m()
    );
    let inputs = MaximalMatching.trivial_inputs(&g);
    let run = linegraph::solve_edges(&g, &MaximalMatching, &inputs, Config::default())
        .expect("adapter runs");
    let seq = solve_edges_sequentially(&MaximalMatching, &g, &idx, &inputs);
    assert_eq!(run.outputs, seq, "adapter must equal the sequential greedy");
    MaximalMatching
        .validate(&g, &inputs, &run.outputs)
        .expect("matching is maximal and independent");
    let matched = run.outputs.iter().filter(|&&b| b).count();
    println!(
        "maximal matching: {matched} edges, rounds = {}, max awake = {}",
        run.metrics.rounds,
        run.metrics.max_awake()
    );

    let cinputs = EdgeColoring.trivial_inputs(&g);
    let col = linegraph::solve_edges_threaded(&g, &EdgeColoring, &cinputs, Config::default(), 4)
        .expect("adapter runs threaded");
    EdgeColoring
        .validate(&g, &cinputs, &col.outputs)
        .expect("edge coloring is proper and within palette");
    let palette = col.outputs.iter().max().map_or(0, |&c| c + 1);
    println!(
        "(2Δ-1)-edge coloring: {palette} colors used (palette bound {}), rounds = {}",
        2 * g.max_degree() - 1,
        col.metrics.rounds
    );
    println!("\nedge problems OK");
}
