//! Quickstart: solve (Δ+1)-coloring with sub-logarithmic awake complexity.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use awake::core::{bounds, theorem1};
use awake::graphs::{coloring, generators};
use awake::olocal::problems::DeltaPlusOneColoring;

fn main() {
    // A 256-node random graph with Δ ≈ √n — the regime where the paper's
    // algorithm asymptotically beats the O(log Δ) baseline.
    let g = generators::random_with_max_degree(256, 16, 42);
    println!("graph: {g:?}");

    let result =
        theorem1::solve(&g, &DeltaPlusOneColoring, Default::default()).expect("simulation runs");

    coloring::check_proper(&g, &result.outputs).expect("output is a proper coloring");
    println!(
        "proper coloring with {} colors (Δ+1 = {})",
        coloring::palette_size(&result.outputs),
        g.max_degree() + 1
    );
    println!(
        "awake complexity: {} (closed-form budget {})",
        result.composition.max_awake(),
        bounds::theorem1_awake(&result.params)
    );
    println!(
        "round complexity: {} — the skip-ahead simulator only paid for {} awake node-rounds",
        result.composition.rounds(),
        result.composition.awake_per_node().iter().sum::<u64>()
    );
    println!("\nper-stage accounting:\n{}", result.composition.report());
}
