//! Watch Theorem 13 build a colored BFS-clustering, iteration by
//! iteration (the Figure 3 loop).
//!
//! ```sh
//! cargo run --release --example clustering_pipeline
//! ```

use awake::core::{params::Params, theorem13};
use awake::graphs::generators;

fn main() {
    let g = generators::gnp(384, 0.04, 3);
    let params = Params::for_graph(&g);
    println!("graph: {g:?}");
    println!(
        "params: b = {}, iterations = {}, a·b² = {}, color bound = {}\n",
        params.b,
        params.iterations,
        params.ab2,
        params.color_bound()
    );

    let res = theorem13::compute(&g, &params).expect("pipeline runs");
    res.clustering
        .validate_colored(&g)
        .expect("valid colored BFS-clustering");

    println!(
        "{:>5} {:>16} {:>16} {:>18} {:>14}",
        "iter", "clusters before", "finalized nodes", "surviving clusters", "≤ before/b?"
    );
    for s in &res.iteration_stats {
        println!(
            "{:>5} {:>16} {:>16} {:>18} {:>14}",
            s.iteration,
            s.clusters_before,
            s.finalized_nodes,
            s.clusters_after,
            if (s.clusters_after as u64) * params.b <= s.clusters_before as u64 {
                "yes"
            } else {
                "NO (bug!)"
            }
        );
    }

    let labels = res.clustering.labels();
    println!(
        "\ncolors used: {} (bound {}), clusters: {}",
        labels.len(),
        params.color_bound(),
        res.clustering.cluster_count(&g)
    );
    println!(
        "awake complexity: {} | rounds: {}",
        res.composition.max_awake(),
        res.composition.rounds()
    );
}
