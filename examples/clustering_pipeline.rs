//! Watch Theorem 13 build a colored BFS-clustering, iteration by
//! iteration (the Figure 3 loop).
//!
//! A thin front-end over the `awake-lab` scenario harness: the scenario
//! spec supplies the graph family and the deterministic seed, the harness
//! reports the end-to-end row, and the iteration table drills into the
//! Theorem 13 stage on the same graph instance.
//!
//! ```sh
//! cargo run --release --example clustering_pipeline
//! ```

use awake::core::{params::Params, theorem13};
use awake_lab::runner::Runner;
use awake_lab::scenario::{Algo, GraphFamily, ProblemKind, Scenario};

fn main() {
    let scenario = Scenario::of(
        GraphFamily::Gnp { n: 384, p: 0.04 },
        ProblemKind::Coloring,
        Algo::Theorem1,
    )
    .build();
    let suite_seed = 3;

    // Drill-down: rebuild the scenario's graph and run the Theorem 13
    // stage alone, printing the Figure 3 iteration statistics.
    let g = scenario.family.build(scenario.seed(suite_seed));
    let params = Params::for_graph(&g);
    println!("graph: {g:?}");
    println!(
        "params: b = {}, iterations = {}, a·b² = {}, color bound = {}\n",
        params.b,
        params.iterations,
        params.ab2,
        params.color_bound()
    );

    let res = theorem13::compute(&g, &params).expect("pipeline runs");
    res.clustering
        .validate_colored(&g)
        .expect("valid colored BFS-clustering");

    println!(
        "{:>5} {:>16} {:>16} {:>18} {:>14}",
        "iter", "clusters before", "finalized nodes", "surviving clusters", "≤ before/b?"
    );
    for s in &res.iteration_stats {
        println!(
            "{:>5} {:>16} {:>16} {:>18} {:>14}",
            s.iteration,
            s.clusters_before,
            s.finalized_nodes,
            s.clusters_after,
            if (s.clusters_after as u64) * params.b <= s.clusters_before as u64 {
                "yes"
            } else {
                "NO (bug!)"
            }
        );
    }

    let labels = res.clustering.labels();
    println!(
        "\ncolors used: {} (bound {}), clusters: {}",
        labels.len(),
        params.color_bound(),
        res.clustering.cluster_count(&g)
    );

    // The harness row for the same scenario: the full Theorem 1 pipeline
    // (Theorem 13 + Theorem 9) on the identical graph instance.
    let report = Runner::serial()
        .run(
            "clustering-pipeline",
            std::slice::from_ref(&scenario),
            suite_seed,
        )
        .expect("suite runs");
    print!(
        "\nend-to-end (Theorem 1) harness row:\n{}",
        report.text_table()
    );
    let row = &report.scenarios[0];
    println!(
        "awake complexity: {} | rounds: {}",
        row.metrics.max_awake, row.metrics.rounds
    );
}
