//! Energy audit: compare the three algorithm generations on one network.
//!
//! A battery-powered sensor mesh needs a maximal independent set (cluster
//! heads). Energy ∝ awake rounds. This example is a thin front-end over
//! the `awake-lab` scenario harness: three scenarios on the *same* graph
//! instance (scenario seeds are derived per graph family, so the rows
//! compare like for like) — the trivial by-identifier greedy (awake
//! `O(Δ)`), Barenboim–Maimon (awake `O(log Δ + log* n)`), and the paper's
//! Theorem 1 (awake `O(√log n · log* n)`).
//!
//! ```sh
//! cargo run --release --example energy_audit
//! ```

use awake_lab::runner::Runner;
use awake_lab::scenario::{Algo, GraphFamily, ProblemKind, Scenario};

fn main() {
    // Dense sensor field: n = 512, Δ ≤ 64.
    let family = GraphFamily::BoundedDegree { n: 512, delta: 64 };
    let scenarios: Vec<Scenario> = [
        (Algo::Trivial, "trivial (awake O(Δ))"),
        (Algo::Bm21, "BM21 (awake O(log Δ + log* n))"),
        (Algo::Theorem1, "Theorem 1 (awake O(√log n · log* n))"),
    ]
    .into_iter()
    .map(|(algo, label)| {
        Scenario::of(family.clone(), ProblemKind::Mis, algo)
            .named(label)
            .build()
    })
    .collect();

    let report = Runner::serial()
        .run("energy-audit", &scenarios, 7)
        .expect("audit runs");
    let row = &report.scenarios[0];
    println!(
        "sensor mesh: n = {}, m = {} (seed {})\n",
        row.n, row.m, row.seed
    );
    print!("{}", report.text_table());

    assert!(
        report.scenarios.iter().all(|s| s.valid),
        "every generation must produce a valid MIS"
    );
    // The budget audit: every generation's measured awake/round complexity
    // must respect its closed-form bound (`awake_core::bounds`) — the same
    // check `suite --audit` gates in CI.
    for s in &report.scenarios {
        assert!(
            s.bound_ok,
            "{}: measured awake {} / bound {}, rounds {} / bound {}",
            s.name, s.metrics.max_awake, s.awake_bound, s.metrics.rounds, s.round_bound
        );
    }
    println!(
        "\nbudget audit: all three generations within their closed-form \
         bounds (max awake ≤ awake_bound, rounds ≤ round_bound)."
    );
    println!(
        "\nNote: Theorem 1's constants dominate at laptop scale — its value \
         is the *shape*: its awake complexity is independent of Δ and grows \
         only as √log n (see benches/exp_e2_crossover for the sweep)."
    );
}
