//! Energy audit: compare the three algorithm generations on one network.
//!
//! A battery-powered sensor mesh needs a maximal independent set (cluster
//! heads). Energy ∝ awake rounds. This example runs the trivial
//! by-identifier greedy (awake `O(Δ)`), Barenboim–Maimon (awake
//! `O(log Δ + log* n)`), and the paper's Theorem 1 (awake
//! `O(√log n · log* n)`) and prints the energy bill of each.
//!
//! ```sh
//! cargo run --release --example energy_audit
//! ```

use awake::core::{bm21, theorem1, trivial};
use awake::graphs::generators;
use awake::olocal::problems::MaximalIndependentSet;
use awake::olocal::OLocalProblem;
use awake::sleeping::{Config, Engine};

fn main() {
    // Dense sensor field: n = 512, Δ ≈ 64.
    let g = generators::random_with_max_degree(512, 64, 7);
    let p = MaximalIndependentSet;
    println!("sensor mesh: {g:?}\n");
    println!(
        "{:<28} {:>12} {:>12} {:>14}",
        "algorithm", "max awake", "avg awake", "rounds"
    );

    // 1. Trivial by-ident greedy.
    let programs: Vec<trivial::TrivialGreedy<MaximalIndependentSet>> = g
        .nodes()
        .map(|_| trivial::TrivialGreedy::new(p, ()))
        .collect();
    let run = Engine::new(&g, Config::default()).run(programs).unwrap();
    p.validate(&g, &vec![(); g.n()], &run.outputs).unwrap();
    println!(
        "{:<28} {:>12} {:>12.1} {:>14}",
        "trivial (awake O(Δ))",
        run.metrics.max_awake(),
        run.metrics.avg_awake(),
        run.metrics.rounds
    );

    // 2. BM21.
    let r = bm21::solve(&g, &p, &vec![(); g.n()], None).unwrap();
    p.validate(&g, &vec![(); g.n()], &r.outputs).unwrap();
    println!(
        "{:<28} {:>12} {:>12.1} {:>14}",
        "BM21 (awake O(log Δ))",
        r.composition.max_awake(),
        r.composition.avg_awake(),
        r.composition.rounds()
    );

    // 3. Theorem 1.
    let r = theorem1::solve(&g, &p, Default::default()).unwrap();
    p.validate(&g, &vec![(); g.n()], &r.outputs).unwrap();
    println!(
        "{:<28} {:>12} {:>12.1} {:>14}",
        "Theorem 1 (awake O(√log n))",
        r.composition.max_awake(),
        r.composition.avg_awake(),
        r.composition.rounds()
    );

    println!(
        "\nNote: Theorem 1's constants dominate at laptop scale — its value \
         is the *shape*: its awake complexity is independent of Δ and grows \
         only as √log n (see benches/exp_e2_crossover for the sweep)."
    );
}
