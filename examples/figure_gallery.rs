//! Reproduce the paper's figures as executable artifacts.
//!
//! * Figure 1 — the Lemma 10 palette tree for `q = 8` with the exact
//!   `φ`/`r` values printed in the paper;
//! * Figure 2 — a Lemma 14 two-level clustering flattened with exact
//!   depths;
//! * Figure 4 — a Lemma 15 run showing parent selection, the `F₂`
//!   decomposition and the singleton demotion of small-root clusters.
//!
//! ```sh
//! cargo run --release --example figure_gallery
//! ```

use awake::core::clustering::{Assign, Clustering};
use awake::core::lemma10::PaletteTree;
use awake::core::params::Params;
use awake::core::theorem13;
use awake::graphs::{generators, to_dot};

fn figure1() {
    println!("── Figure 1: the Lemma 10 tree for q = 8 ──");
    let t = PaletteTree::new(8);
    for c in 1..=8u64 {
        println!(
            "  color {c}: φ({c}) = {:>2}, r({c}) = {:?}",
            t.phi(c),
            t.r(c)
        );
    }
    println!(
        "  paper's caption: φ(2) = {}, r(2) = {:?}; φ(4) = {}, r(4) = {:?}",
        t.phi(2),
        t.r(2),
        t.phi(4),
        t.r(4)
    );
    println!("  |r(c)| = 1 + log₂ q = {}\n", t.path_len());
}

fn figure2() {
    println!("── Figure 2: Lemma 14 on a two-level clustering ──");
    // A path of 8 nodes in four 2-node clusters; clusters merged in pairs.
    let g = generators::path(8);
    let two_level = Clustering {
        assign: (0..8u32)
            .map(|v| {
                Some(Assign {
                    label: (v / 2) as u64 + 1,
                    depth: v % 2,
                })
            })
            .collect(),
    };
    two_level.validate_uniquely_labeled(&g).unwrap();
    let q = two_level.virtual_graph(&g);
    println!(
        "  level-1: 4 clusters; virtual graph H has {} vertices, {} edges",
        q.graph.n(),
        q.graph.m()
    );
    // Merge clusters {1,2} and {3,4} (as if (ℓ', δ') said so), exact depths:
    let merged = Clustering {
        assign: (0..8u32)
            .map(|v| {
                Some(Assign {
                    label: (v / 4) as u64 + 10,
                    depth: v % 4,
                })
            })
            .collect(),
    };
    merged.validate_uniquely_labeled(&g).unwrap();
    println!("  flattened: 2 merged clusters with exact BFS depths 0..3 ✓\n");
}

fn figure4() {
    println!("── Figure 4 (spirit): Lemma 15 inside Theorem 13 ──");
    // A star (its high-degree hub roots a tree that survives iteration 1
    // as a big cluster) next to a path (its low-degree tree root sends the
    // whole region into U as small-colored singletons).
    let g = awake::graphs::ops::disjoint_union(&generators::star(30), &generators::path(20));
    let params = Params::for_graph(&g);
    let res = theorem13::compute(&g, &params).expect("pipeline runs");
    res.clustering.validate_colored(&g).unwrap();
    let s = &res.iteration_stats[0];
    println!(
        "  iteration 1: {} vertices -> {} singletons finalized, {} tree clusters survive (b = {})",
        s.clusters_before, s.finalized_nodes, s.clusters_after, params.b
    );
    println!(
        "  final colored BFS-clustering: {} colors over {} clusters",
        res.clustering.labels().len(),
        res.clustering.cluster_count(&g)
    );
    println!("\n  DOT of the graph with (color, depth) labels:");
    let dot = to_dot(&g, |v| {
        res.clustering.assign[v.index()].map(|a| format!("γ={} δ={}", a.label, a.depth))
    });
    for line in dot.lines().take(12) {
        println!("    {line}");
    }
    println!("    … (truncated)");
}

fn main() {
    figure1();
    figure2();
    figure4();
}
